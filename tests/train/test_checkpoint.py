"""Checkpoint round-trip and resume bit-identity tests (repro.train.checkpoint)."""

import json

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Conv2d, Sequential
from repro.nn.optim import SGD, Adam, CosineLR, StepLR
from repro.nn.trainer import TrainConfig
from repro.train import Checkpoint, CheckpointError, TrainEngine, load_checkpoint


def _problem(n=10, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 8, 8))
    return x, x * 0.5


def _make(batch_size=4):
    x, y = _problem()
    model = Sequential(Conv2d(1, 4, 3, seed=7), Conv2d(4, 1, 3, seed=8))
    loader = DataLoader(ArrayDataset(x, y), batch_size=batch_size, seed=3)
    return model, loader


def _assert_same_weights(model_a, model_b):
    for (name, p), (_, q) in zip(
        model_a.named_parameters(), model_b.named_parameters(), strict=True
    ):
        np.testing.assert_array_equal(p.data, q.data, err_msg=name)


def _engine(config, optim_cls=None, sched_cls=None):
    model, loader = _make()
    optimizer = scheduler = None
    if optim_cls is SGD:
        optimizer = SGD(model.parameters(), lr=config.lr, momentum=0.9)
    elif optim_cls is Adam:
        optimizer = Adam(model.parameters(), lr=config.lr)
    if sched_cls is StepLR:
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
    elif sched_cls is CosineLR:
        scheduler = CosineLR(optimizer, total=config.epochs, min_lr=config.lr * 0.05)
    return TrainEngine(model, config, optimizer=optimizer, scheduler=scheduler), loader


class TestResumeBitIdentity:
    """train N + save + fresh load + train M  ==  train N+M straight."""

    @pytest.mark.smoke
    @pytest.mark.parametrize(
        "optim_cls,sched_cls",
        [(Adam, CosineLR), (Adam, StepLR), (SGD, CosineLR), (SGD, StepLR)],
    )
    def test_resume_equals_straight_run(self, tmp_path, optim_cls, sched_cls):
        config = TrainConfig(epochs=4, lr=1e-2)
        straight, loader = _engine(config, optim_cls, sched_cls)
        res_straight = straight.fit(loader)

        first, loader_a = _engine(config, optim_cls, sched_cls)
        first.fit(loader_a, epochs=2)
        path = tmp_path / "ck.npz"
        first.save_checkpoint(path)

        second, loader_b = _engine(config, optim_cls, sched_cls)
        second.load_checkpoint(path, loader=loader_b)
        res_resumed = second.fit(loader_b)

        _assert_same_weights(straight.model, second.model)
        assert res_resumed.train_losses == res_straight.train_losses
        assert res_resumed.grad_norms == res_straight.grad_norms
        assert res_resumed.lr_trace == res_straight.lr_trace

    def test_loader_rng_state_round_trips(self):
        # The shuffle generator advances per epoch; the saved state must
        # replay the exact orders an uninterrupted run would see.
        x, y = _problem()
        a = DataLoader(ArrayDataset(x, y), batch_size=4, seed=5)
        for _ in a:  # advance one epoch
            pass
        state = a.state_dict()
        next_order = [batch[0][:, 0, 0, 0].tolist() for batch in a]
        b = DataLoader(ArrayDataset(x, y), batch_size=4, seed=5)
        b.load_state_dict(state)
        replayed = [batch[0][:, 0, 0, 0].tolist() for batch in b]
        assert replayed == next_order

    def test_numpy_global_rng_round_trips(self, tmp_path):
        model, _ = _make()
        np.random.seed(1234)
        np.random.standard_normal(7)  # advance to a mid-stream state
        expected_next = None
        ck = Checkpoint.capture(model=model)
        expected_next = np.random.standard_normal(3)
        np.random.seed(999)  # clobber
        ck.save(tmp_path / "ck.npz")
        Checkpoint.load(tmp_path / "ck.npz").restore()
        np.testing.assert_array_equal(np.random.standard_normal(3), expected_next)


class TestCheckpointFile:
    def test_save_load_preserves_everything(self, tmp_path):
        config = TrainConfig(epochs=3, lr=1e-2)
        engine, loader = _engine(config)
        engine.fit(loader, epochs=2)
        saved = engine.save_checkpoint(tmp_path / "ck.npz", model_spec={"family": "x"})
        assert isinstance(saved, Checkpoint)
        loaded = load_checkpoint(tmp_path / "ck.npz")
        assert loaded.epoch == 2
        assert loaded.model_spec == {"family": "x"}
        assert loaded.config["epochs"] == 3
        assert loaded.optimizer_state["type"] == "Adam"
        assert loaded.scheduler_state["type"] == "CosineLR"
        assert len(loaded.history["train_losses"]) == 2
        for name, arr in engine.model.state_dict().items():
            np.testing.assert_array_equal(loaded.model_state[name], arr)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            Checkpoint.load(tmp_path / "nope.npz")

    def test_corrupted_file_raises(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            Checkpoint.load(path)

    def test_truncated_file_raises(self, tmp_path):
        config = TrainConfig(epochs=2, lr=1e-2)
        engine, loader = _engine(config)
        engine.fit(loader, epochs=1)
        path = tmp_path / "ck.npz"
        engine.save_checkpoint(path)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "ck.npz"
        meta = json.dumps({"schema": 999, "epoch": 0, "model_keys": []})
        np.savez(path, meta=np.frombuffer(meta.encode(), dtype=np.uint8))
        with pytest.raises(CheckpointError, match="schema"):
            Checkpoint.load(path)

    def test_optimizer_type_mismatch_raises(self, tmp_path):
        config = TrainConfig(epochs=2, lr=1e-2)
        adam_engine, loader = _engine(config)
        adam_engine.fit(loader, epochs=1)
        path = tmp_path / "ck.npz"
        adam_engine.save_checkpoint(path)
        sgd_engine, loader_b = _engine(config, SGD, StepLR)
        with pytest.raises(CheckpointError, match="optimizer is Adam"):
            sgd_engine.load_checkpoint(path, loader=loader_b)

    def test_model_mismatch_raises(self, tmp_path):
        config = TrainConfig(epochs=1, lr=1e-2)
        engine, loader = _engine(config)
        engine.fit(loader)
        path = tmp_path / "ck.npz"
        engine.save_checkpoint(path)
        other = Sequential(Conv2d(1, 1, 3, seed=0))
        with pytest.raises(KeyError):
            TrainEngine(other, config).load_checkpoint(path)

    def test_weights_only_bundle(self, tmp_path):
        model, _ = _make()
        ck = Checkpoint.capture(model=model, epoch=0)
        ck.save(tmp_path / "w.npz")
        loaded = Checkpoint.load(tmp_path / "w.npz")
        assert loaded.optimizer_state is None
        fresh, _ = _make()
        for _, p in fresh.named_parameters():
            p.data += 1.0
        loaded.restore(model=fresh)
        _assert_same_weights(model, fresh)


class TestBuildModel:
    def _trained_checkpoint(self, tmp_path, kind="real"):
        from repro.experiments.runner import make_task, model_for_task
        from repro.experiments.settings import TINY
        from repro.models.factory import make_factory

        import dataclasses as dc

        data = make_task("denoise", TINY)
        factory = make_factory(kind) if kind != "real" else None
        model = model_for_task("denoise", factory, TINY, seed=0)
        loader = DataLoader(
            ArrayDataset(data.train_inputs, data.train_targets), batch_size=6, seed=0
        )
        config = TrainConfig(epochs=2, lr=1e-3)
        engine = TrainEngine(model, config)
        engine.fit(loader)
        spec = {"family": "ernet", "kind": kind, **dc.asdict(model.config)}
        path = tmp_path / "model.npz"
        engine.save_checkpoint(path, model_spec=spec)
        return model, data, path

    def test_rebuild_matches_original(self, tmp_path):
        model, data, path = self._trained_checkpoint(tmp_path, kind="ri2+fh")
        rebuilt = Checkpoint.load(path).build_model()
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            expect = model(Tensor(data.test_inputs)).data
            got = rebuilt(Tensor(data.test_inputs)).data
        np.testing.assert_array_equal(got, expect)

    def test_predictor_from_checkpoint(self, tmp_path):
        from repro.nn.inference import Predictor

        model, data, path = self._trained_checkpoint(tmp_path)
        served = Predictor.from_checkpoint(path)(data.test_inputs)
        direct = Predictor(model)(data.test_inputs)
        np.testing.assert_array_equal(served, direct)

    def test_inference_server_from_checkpoint(self, tmp_path):
        from repro.nn.inference import Predictor
        from repro.serving import InferenceServer

        model, data, path = self._trained_checkpoint(tmp_path)
        direct = Predictor(model)(data.test_inputs)
        with InferenceServer.from_checkpoint(path, workers=2) as server:
            futures = [server.submit(img) for img in data.test_inputs]
            served = np.stack([f.result(timeout=30) for f in futures])
        np.testing.assert_array_equal(served, direct)

    def test_no_spec_raises(self, tmp_path):
        model, _ = _make()
        Checkpoint.capture(model=model).save(tmp_path / "w.npz")
        with pytest.raises(CheckpointError, match="no model spec"):
            Checkpoint.load(tmp_path / "w.npz").build_model()
