"""Smoke tests for the top-level public API surface."""

import numpy as np
import pytest


@pytest.mark.smoke
def test_package_imports_and_version():
    import repro

    assert repro.__version__ == "1.0.0"
    for sub in (
        "comms",
        "rings",
        "nn",
        "models",
        "quant",
        "pruning",
        "hardware",
        "imaging",
        "experiments",
        "serving",
        "tune",
    ):
        assert hasattr(repro, sub)


def test_readme_quickstart_snippet():
    from repro.nn.layers import RingConv2d
    from repro.nn.tensor import Tensor
    from repro.rings.catalog import get_ring, proposed_pair

    spec = get_ring("C")
    z = spec.fast.apply(np.array([3.0, 4.0]), np.array([1.0, 2.0]))
    np.testing.assert_allclose(z, [-5.0, 10.0])  # (3+4i)(1+2i) = -5 + 10i

    ri4, f_h = proposed_pair(4)
    conv = RingConv2d(32, 32, 3, ri4.ring, seed=0)
    out = conv(Tensor(np.random.default_rng(0).standard_normal((1, 32, 8, 8))))
    assert out.shape == (1, 32, 8, 8)


def test_nn_namespace_exports_backend_api():
    """Backend machinery, Predictor and conv2d_grouped need no deep paths."""
    from repro import nn

    for name in (
        "backend", "Backend", "NumpyBackend", "ThreadedBackend", "BlockedBackend",
        "use_backend", "current_backend", "available_backends",
        "Predictor", "conv2d_grouped",
    ):
        assert name in nn.__all__, f"{name} missing from repro.nn.__all__"
        assert hasattr(nn, name), f"{name} not importable from repro.nn"
    assert {"numpy", "threaded", "blocked"} <= set(nn.available_backends())


def test_train_namespace_exports():
    """The training engine needs no deep paths either."""
    from repro import train

    for name in (
        "TrainEngine", "TrainHistory", "TrainConfig", "TrainResult",
        "Callback", "CheckpointCallback", "EvalCallback", "LambdaCallback",
        "Checkpoint", "CheckpointError", "load_checkpoint",
        "ParallelTrainEngine", "DEFAULT_GRAIN",
    ):
        assert name in train.__all__, f"{name} missing from repro.train.__all__"
        assert hasattr(train, name), f"{name} not importable from repro.train"


def test_comms_namespace_exports():
    """The process-communication layer's surface needs no deep paths."""
    from repro import comms

    for name in (
        "ShmRing", "RingClient", "active_segments",
        "tree_reduce", "flatten_arrays", "unflatten_into",
    ):
        assert name in comms.__all__, f"{name} missing from repro.comms.__all__"
        assert hasattr(comms, name), f"{name} not importable from repro.comms"


def test_rings_namespace_exports():
    from repro import rings

    assert rings.get_ring("rh4").n == 4
    assert rings.hadamard(4).shape == (4, 4)
    assert callable(rings.backprop.adjoint_weight)


def test_experiment_modules_expose_run_and_format():
    from repro import experiments

    for name in (
        "table1", "table2", "table4", "table5", "table6", "table7", "table8",
        "fig01", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "figc1",
    ):
        module = getattr(experiments, name)
        assert callable(module.run)
        assert callable(module.format_result)


def test_serving_namespace_exports():
    """The serving layer's surface needs no deep paths."""
    from repro import serving

    for name in (
        "InferenceServer", "ServerStats", "ServerClosed", "ServerOverloaded",
        "make_workload", "run_closed_loop", "serial_reference", "run_serve_bench",
    ):
        assert name in serving.__all__, f"{name} missing from repro.serving.__all__"
    from repro.nn import EinsumBackend  # the deterministic verification substrate

    assert EinsumBackend().name == "einsum"
