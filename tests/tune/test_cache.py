"""Tests for the fingerprinted tuning cache (repro.tune.cache)."""

import json

import pytest

from repro.models.ernet import dn_ernet_pu
from repro.tune import (
    TunedConfig,
    TuningCache,
    TuningEntry,
    host_metadata,
    model_signature,
    tuning_fingerprint,
    tuning_root,
)
from repro.tune.cache import TUNING_DIR_ENV, TUNING_SCHEMA


@pytest.fixture(scope="module")
def model():
    return dn_ernet_pu(blocks=1, ratio=1, seed=0)


def _entry(digest: str) -> TuningEntry:
    return TuningEntry(
        fingerprint=digest,
        shape=(1, 16, 16),
        batch=8,
        winner=TunedConfig(backend="threaded:2", tile=48, batch_size=4),
        default=TunedConfig(backend=None, tile=48, batch_size=8),
        speedup=1.25,
        trials=[{"label": "ambient/tile48/mb8", "median_s": 0.01, "parity": True}],
    )


class TestFingerprint:
    @pytest.mark.smoke
    def test_stable_for_equal_context(self, model):
        signature = model_signature(model)
        host = host_metadata()
        a = tuning_fingerprint(signature, (1, 16, 16), 8, backends=["numpy"], host=host)
        b = tuning_fingerprint(signature, (1, 16, 16), 8, backends=["numpy"], host=host)
        assert a == b and len(a) == 16

    def test_invalidates_on_model_spec_change(self, model):
        other = dn_ernet_pu(blocks=2, ratio=1, seed=0)
        host = host_metadata()
        assert tuning_fingerprint(
            model_signature(model), (1, 16, 16), 8, backends=["numpy"], host=host
        ) != tuning_fingerprint(
            model_signature(other), (1, 16, 16), 8, backends=["numpy"], host=host
        )

    def test_weights_do_not_change_the_signature(self, model):
        # Schedule cost depends on kernel geometry, not the numbers in
        # the weights: a finetuned model reuses its architecture's entry.
        before = model_signature(model)
        twin = dn_ernet_pu(blocks=1, ratio=1, seed=99)  # same shape, new weights
        assert model_signature(twin) == before

    def test_invalidates_on_host_change(self, model):
        signature = model_signature(model)
        host = host_metadata()
        moved = dict(host, machine="sparc64", usable_cpus=128)
        assert tuning_fingerprint(
            signature, (1, 16, 16), 8, backends=["numpy"], host=host
        ) != tuning_fingerprint(signature, (1, 16, 16), 8, backends=["numpy"], host=moved)

    def test_invalidates_on_backend_availability_change(self, model):
        signature = model_signature(model)
        host = host_metadata()
        assert tuning_fingerprint(
            signature, (1, 16, 16), 8, backends=["numpy"], host=host
        ) != tuning_fingerprint(
            signature, (1, 16, 16), 8, backends=["numpy", "threaded"], host=host
        )

    def test_invalidates_on_shape_and_batch(self, model):
        signature = model_signature(model)
        host = host_metadata()
        base = tuning_fingerprint(signature, (1, 16, 16), 8, backends=["numpy"], host=host)
        assert base != tuning_fingerprint(
            signature, (1, 24, 24), 8, backends=["numpy"], host=host
        )
        assert base != tuning_fingerprint(
            signature, (1, 16, 16), 4, backends=["numpy"], host=host
        )


class TestTuningCache:
    def test_round_trip(self, tmp_path):
        cache = TuningCache(tmp_path)
        entry = _entry("a" * 16)
        path = cache.store("ernet-denoise", entry)
        assert path.exists()
        loaded = cache.load("ernet-denoise", "a" * 16)
        assert loaded == entry

    def test_miss_returns_none(self, tmp_path):
        assert TuningCache(tmp_path).load("ernet-denoise", "b" * 16) is None

    def test_label_is_cosmetic(self, tmp_path):
        cache = TuningCache(tmp_path)
        cache.store("old-label", _entry("c" * 16))
        assert cache.load("new-label", "c" * 16) is not None

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        path = cache.store("ernet", _entry("d" * 16))
        path.write_text("{not json")
        assert cache.load("ernet", "d" * 16) is None

    def test_schema_mismatch_degrades_to_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        path = cache.store("ernet", _entry("e" * 16))
        payload = json.loads(path.read_text())
        payload["schema"] = TUNING_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert cache.load("ernet", "e" * 16) is None

    def test_mismatched_fingerprint_inside_file_is_refused(self, tmp_path):
        cache = TuningCache(tmp_path)
        path = cache.path_for("ernet", "f" * 16)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(_entry("0" * 16).to_jsonable()))
        assert cache.load("ernet", "f" * 16) is None

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TUNING_DIR_ENV, str(tmp_path / "elsewhere"))
        assert tuning_root() == tmp_path / "elsewhere"
        cache = TuningCache()
        cache.store("ernet", _entry("9" * 16))
        assert (tmp_path / "elsewhere").exists()
        assert TuningCache().load("ernet", "9" * 16) is not None

    def test_entry_round_trip_preserves_trials(self):
        entry = _entry("1" * 16)
        assert TuningEntry.from_dict(entry.to_jsonable()) == entry
