"""Tests for the autotuner's configuration space (repro.tune.space)."""

import numpy as np
import pytest

from repro.models.ernet import dn_ernet_pu
from repro.nn.inference import DEFAULT_TILE, plan_for_model
from repro.tune import TunedConfig, bucket_batch, candidate_space, default_config


@pytest.fixture(scope="module")
def model():
    return dn_ernet_pu(blocks=1, ratio=1, seed=0)


class TestTunedConfig:
    @pytest.mark.smoke
    def test_validation_and_round_trip(self):
        config = TunedConfig(backend="threaded:2", tile=32, batch_size=4)
        assert TunedConfig.from_dict(config.to_jsonable()) == config
        ambient = TunedConfig(backend=None, tile=48, batch_size=8)
        assert TunedConfig.from_dict(ambient.to_jsonable()) == ambient
        with pytest.raises(ValueError):
            TunedConfig(backend=None, tile=0, batch_size=8)
        with pytest.raises(ValueError):
            TunedConfig(backend=None, tile=48, batch_size=0)

    def test_label_is_compact(self):
        assert TunedConfig(None, 48, 8).label() == "ambient/tile48/mb8"
        assert TunedConfig("blocked:4", 32, 2).label() == "blocked:4/tile32/mb2"


class TestBucketBatch:
    def test_rounds_up_to_powers_of_two(self):
        assert [bucket_batch(n) for n in (1, 2, 3, 4, 5, 8, 9)] == [1, 2, 4, 4, 8, 8, 16]
        with pytest.raises(ValueError):
            bucket_batch(0)


class TestCandidateSpace:
    def test_default_config_matches_untuned_path(self, model):
        base = default_config(model, 8)
        assert base.backend is None
        assert base.tile == plan_for_model(model, tile=DEFAULT_TILE).tile
        assert base.batch_size == 8

    def test_default_is_element_zero_and_no_duplicates(self, model):
        candidates = candidate_space(model, (1, 64, 64), 8)
        assert candidates[0] == default_config(model, 8)
        assert len(candidates) == len(set(candidates))

    def test_enumeration_is_deterministic(self, model):
        a = candidate_space(model, (1, 64, 64), 8)
        b = candidate_space(model, (1, 64, 64), 8)
        assert a == b

    def test_tiles_stay_on_divisor_grid(self, model):
        divisor = plan_for_model(model).divisor
        assert divisor == 2  # pixel-unshuffle denoiser
        for config in candidate_space(model, (1, 128, 128), 4):
            assert config.tile % divisor == 0

    def test_small_shapes_collapse_the_tile_axis(self, model):
        # Every tile >= the image runs the identical batched path, so
        # tiny shapes must not multiply the trial schedule by tiles.
        base_tile = default_config(model, 4).tile
        tiles = {config.tile for config in candidate_space(model, (1, 16, 16), 4)}
        assert tiles == {base_tile}
        large_tiles = {config.tile for config in candidate_space(model, (1, 128, 128), 4)}
        assert len(large_tiles) > 1

    def test_micro_batches_are_powers_of_two_within_bucket(self, model):
        # Powers of two up to bucket_batch(6) == 8, plus the default
        # configuration, which keeps its configured size of 6.
        micros = {config.batch_size for config in candidate_space(model, (1, 16, 16), 6)}
        assert micros == {1, 2, 4, 6, 8}

    def test_rejects_non_chw_shapes(self, model):
        with pytest.raises(ValueError):
            candidate_space(model, (16, 16), 4)

    def test_backend_specs_are_constructible(self, model):
        from repro.nn.backend import make_backend

        for config in candidate_space(model, (1, 16, 16), 2):
            if config.backend is not None:
                make_backend(config.backend)  # must not raise
