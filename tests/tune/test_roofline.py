"""Tests for the analytic candidate ranking (repro.tune.roofline)."""

import pytest

from repro.models.ernet import dn_ernet_pu
from repro.tune import TunedConfig, analytic_cost, candidate_space, rank_candidates


@pytest.fixture(scope="module")
def model():
    return dn_ernet_pu(blocks=1, ratio=1, seed=0)


class TestAnalyticCost:
    @pytest.mark.smoke
    def test_deterministic(self, model):
        config = TunedConfig(backend="threaded:2", tile=48, batch_size=4)
        a = analytic_cost(model, (1, 64, 64), 8, config)
        b = analytic_cost(model, (1, 64, 64), 8, config)
        assert a == b and a > 0

    def test_larger_micro_batch_amortizes_dispatch(self, model):
        # Same backend and tile at a shape small enough that the im2col
        # working set fits SRAM either way: only the per-forward
        # dispatch term differs, so mb1 must cost strictly more.
        mb1 = analytic_cost(model, (1, 16, 16), 8, TunedConfig(None, 48, 1))
        mb8 = analytic_cost(model, (1, 16, 16), 8, TunedConfig(None, 48, 8))
        assert mb1 > mb8

    def test_sram_spill_penalizes_large_micro_batches(self, model):
        # At 48px the full micro-batch's working set spills the SRAM
        # budget: the memory roof must outweigh the dispatch savings
        # (this is why the tuner's winners are shape-dependent at all).
        mb1 = analytic_cost(model, (1, 48, 48), 8, TunedConfig(None, 48, 1))
        mb8 = analytic_cost(model, (1, 48, 48), 8, TunedConfig(None, 48, 8))
        assert mb8 > mb1

    def test_halo_recompute_penalizes_tiny_tiles(self, model):
        # Micro-batch pinned to 1 so the memory/dispatch terms cannot
        # mask geometry: a 128px image through 16px tiles redoes far
        # more halo context than through 64px tiles.
        tiny = analytic_cost(model, (1, 128, 128), 1, TunedConfig(None, 16, 1))
        big = analytic_cost(model, (1, 128, 128), 1, TunedConfig(None, 64, 1))
        assert tiny > big


class TestRankCandidates:
    def test_ranking_is_deterministic_and_total(self, model):
        candidates = candidate_space(model, (1, 64, 64), 8)
        first = rank_candidates(model, (1, 64, 64), 8, candidates)
        second = rank_candidates(model, (1, 64, 64), 8, list(reversed(candidates)))
        # Same scores and same total order regardless of input order
        # (ties break on the config label).
        assert [c for c, _ in first] == [c for c, _ in second]
        assert [s for _, s in first] == [s for _, s in second]
        assert [s for _, s in first] == sorted(s for _, s in first)

    def test_every_candidate_is_scored(self, model):
        candidates = candidate_space(model, (1, 32, 32), 4)
        ranked = rank_candidates(model, (1, 32, 32), 4, candidates)
        assert sorted(c.label() for c, _ in ranked) == sorted(
            c.label() for c in candidates
        )
