"""Tests for the measured-trial autotuner and its consumers.

Covers the tentpole guarantees end to end: deterministic trial
schedules under a pinned seed, winners that pass the byte-parity guard,
cache population/lookup, graceful fallback when a cached backend spec
is unavailable, and — the invariant everything else leans on —
bit-identity of tuned vs untuned outputs across the whole registered
backend matrix, for the eager Predictor, the compiled Predictor and the
micro-batching server.
"""

import numpy as np
import pytest

from repro.models.ernet import dn_ernet_pu
from repro.nn.backend import available_backends, get_backend, use_backend
from repro.nn.inference import CompiledPredictor, Predictor
from repro.serving import InferenceServer
from repro.tune import (
    TunedConfig,
    TuningCache,
    TuningEntry,
    bucket_batch,
    lookup,
    model_label,
    model_signature,
    tune_model,
    tuning_fingerprint,
)
from repro.tune.cache import TUNED_ENV, TUNING_DIR_ENV

SHAPE = (1, 16, 16)
BATCH = 4


@pytest.fixture()
def model():
    model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
    rng = np.random.default_rng(7)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    model.eval()
    return model


@pytest.fixture()
def tuning_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(TUNING_DIR_ENV, str(tmp_path))
    return tmp_path


def _probe(seed=11, n=BATCH):
    return np.random.default_rng(seed).standard_normal((n, *SHAPE))


def _plant_entry(model, winner: TunedConfig, shape=SHAPE, batch=BATCH) -> TuningEntry:
    """Store a hand-made cache entry under the live fingerprint."""
    digest = tuning_fingerprint(model_signature(model), shape, bucket_batch(batch))
    entry = TuningEntry(
        fingerprint=digest,
        shape=shape,
        batch=bucket_batch(batch),
        winner=winner,
        default=TunedConfig(backend=None, tile=48, batch_size=bucket_batch(batch)),
        speedup=1.5,
        trials=[],
    )
    TuningCache().store(model_label(model), entry)
    return entry


class TestTuneModel:
    @pytest.mark.smoke
    def test_populates_cache_and_lookup_hits(self, model, tuning_dir):
        entry = tune_model(model, SHAPE, BATCH, seed=0, trials=1, top_k=2)
        assert list(tuning_dir.glob("*.json")), "no cache file written"
        hit = lookup(model, SHAPE, BATCH)
        assert hit is not None and hit.winner == entry.winner
        assert hit.fingerprint == entry.fingerprint

    def test_default_is_always_measured_and_winner_no_slower(self, model, tuning_dir):
        entry = tune_model(model, SHAPE, BATCH, seed=0, trials=1, top_k=1)
        measured = [t for t in entry.trials if t["median_s"] is not None]
        assert entry.default.to_jsonable() in [t["config"] for t in measured]
        # Winner is min-median over a set containing the default.
        assert entry.speedup >= 1.0
        winner_trials = [
            t for t in measured if t["config"] == entry.winner.to_jsonable()
        ]
        assert winner_trials and winner_trials[0]["parity"] is True

    def test_trial_schedule_is_deterministic_under_pinned_seed(self, model, tuning_dir):
        a = tune_model(model, SHAPE, BATCH, seed=3, trials=1, top_k=3, store=False)
        b = tune_model(model, SHAPE, BATCH, seed=3, trials=1, top_k=3, store=False)
        # The candidate enumeration, analytic ranking, and therefore the
        # measured-candidate schedule replay exactly; only wall-clock
        # medians (and possibly the winner) may differ.
        assert [t["label"] for t in a.trials] == [t["label"] for t in b.trials]
        assert [t["analytic"] for t in a.trials] == [t["analytic"] for t in b.trials]
        assert a.fingerprint == b.fingerprint

    def test_batch_is_bucketed_into_the_key(self, model, tuning_dir):
        tune_model(model, SHAPE, 3, seed=0, trials=1, top_k=1)
        # 3 and 4 share the power-of-two bucket; 8 does not.
        assert lookup(model, SHAPE, 4) is not None
        assert lookup(model, SHAPE, 8) is None

    def test_rejects_bad_shape(self, model, tuning_dir):
        with pytest.raises(ValueError):
            tune_model(model, (16, 16), BATCH, trials=1)


class TestLookupFallback:
    def test_miss_returns_none(self, model, tuning_dir):
        assert lookup(model, SHAPE, BATCH) is None

    def test_unavailable_backend_spec_is_refused(self, model, tuning_dir):
        _plant_entry(model, TunedConfig(backend="tpu:9000", tile=48, batch_size=2))
        assert lookup(model, SHAPE, BATCH) is None

    def test_available_backend_spec_is_served(self, model, tuning_dir):
        planted = _plant_entry(model, TunedConfig(backend="numpy", tile=48, batch_size=2))
        hit = lookup(model, SHAPE, BATCH)
        assert hit is not None and hit.winner == planted.winner

    def test_tuned_predictor_falls_back_bit_identically(self, model, tuning_dir):
        # A cached winner naming an unconstructible backend must leave
        # the tuned path on the untuned configuration — same bytes, no
        # crash.
        _plant_entry(model, TunedConfig(backend="tpu:9000", tile=48, batch_size=2))
        x = _probe()
        untuned = Predictor(model, batch_size=BATCH, tuned=False)(x)
        tuned = Predictor(model, batch_size=BATCH, tuned=True)
        np.testing.assert_array_equal(tuned(x), untuned)
        assert tuned._tuned_runtimes[SHAPE] is None  # resolved to fallback


class TestBitIdentity:
    def test_tuned_equals_untuned_across_backend_matrix(self, model, tuning_dir):
        # Winner pinned to each registered backend in turn; the tuned
        # Predictor must reproduce the untuned bytes under every ambient
        # backend (the cross-product is the serving reality: cache
        # written by one process, consumed under another's ambient).
        x = _probe()
        reference = Predictor(model, batch_size=BATCH, tuned=False)(x)
        for winner_spec in sorted(available_backends()):
            _plant_entry(
                model, TunedConfig(backend=winner_spec, tile=48, batch_size=2)
            )
            for ambient in sorted(available_backends()):
                with use_backend(get_backend(ambient)):
                    tuned_out = Predictor(model, batch_size=BATCH, tuned=True)(x)
                np.testing.assert_array_equal(
                    tuned_out, reference,
                    err_msg=f"winner={winner_spec} ambient={ambient}",
                )

    def test_tuned_micro_batch_changes_schedule_not_bytes(self, model, tuning_dir):
        _plant_entry(model, TunedConfig(backend=None, tile=48, batch_size=1))
        x = _probe()
        tuned = Predictor(model, batch_size=BATCH, tuned=True)
        delegate = tuned._tuned_predictor(SHAPE)
        assert delegate is not None and delegate.batch_size == 1
        np.testing.assert_array_equal(
            tuned(x), Predictor(model, batch_size=BATCH, tuned=False)(x)
        )

    def test_compiled_tuned_equals_untuned(self, model, tuning_dir):
        _plant_entry(model, TunedConfig(backend="numpy", tile=48, batch_size=2))
        x = _probe()
        untuned = Predictor(model, batch_size=BATCH, tuned=False)(x)
        compiled = CompiledPredictor(model, batch_size=BATCH, tuned=True)
        np.testing.assert_array_equal(compiled(x), untuned)
        # The delegate is compiled too (plan-replay serving).
        assert isinstance(compiled._tuned_predictor(SHAPE), CompiledPredictor)

    def test_clone_shares_resolved_delegates(self, model, tuning_dir):
        _plant_entry(model, TunedConfig(backend="numpy", tile=48, batch_size=2))
        prototype = Predictor(model, batch_size=BATCH, tuned=True)
        prototype(_probe())
        clone = prototype.clone()
        assert clone.tuned and clone._tuned_runtimes is prototype._tuned_runtimes

    def test_real_tune_then_serve_is_bit_identical(self, model, tuning_dir):
        # End to end with a *measured* winner, not a planted one.
        tune_model(model, SHAPE, BATCH, seed=0, trials=1, top_k=4)
        x = _probe()
        np.testing.assert_array_equal(
            Predictor(model, batch_size=BATCH, tuned=True)(x),
            Predictor(model, batch_size=BATCH, tuned=False)(x),
        )


class TestServerIntegration:
    def test_tuned_server_bit_identical_and_flush_follows_winner(
        self, model, tuning_dir
    ):
        _plant_entry(model, TunedConfig(backend="numpy", tile=48, batch_size=2))
        images = [np.asarray(img) for img in _probe(seed=13, n=10)]
        with InferenceServer(model, workers=2, max_batch=BATCH, tuned=False) as server:
            reference = [server.predict(img) for img in images]
        with InferenceServer(model, workers=2, max_batch=BATCH, tuned=True) as server:
            outputs = [server.predict(img) for img in images]
            assert server._flush_threshold(SHAPE) == 2  # the winner's micro-batch
        for out, ref in zip(outputs, reference, strict=True):
            np.testing.assert_array_equal(out, ref)

    def test_flush_threshold_clamped_to_max_batch(self, model, tuning_dir):
        _plant_entry(model, TunedConfig(backend=None, tile=48, batch_size=64))
        with InferenceServer(model, workers=1, max_batch=BATCH, tuned=True) as server:
            assert server._flush_threshold(SHAPE) == BATCH

    def test_untuned_server_ignores_cache(self, model, tuning_dir):
        _plant_entry(model, TunedConfig(backend=None, tile=48, batch_size=1))
        with InferenceServer(model, workers=1, max_batch=BATCH, tuned=False) as server:
            assert server._flush_threshold(SHAPE) == BATCH


class TestEnvFlag:
    def test_repro_tuned_env_enables_by_default(self, model, tuning_dir, monkeypatch):
        monkeypatch.setenv(TUNED_ENV, "1")
        assert Predictor(model).tuned is True
        monkeypatch.setenv(TUNED_ENV, "0")
        assert Predictor(model).tuned is False
        monkeypatch.delenv(TUNED_ENV)
        assert Predictor(model).tuned is False
        # Explicit argument always wins over the environment.
        monkeypatch.setenv(TUNED_ENV, "1")
        assert Predictor(model, tuned=False).tuned is False

    def test_predictor_tune_entry_point(self, model, tuning_dir):
        predictor = Predictor(model, batch_size=BATCH, tuned=True)
        entry = predictor.tune(SHAPE, seed=0, trials=1, top_k=2)
        assert lookup(model, SHAPE, BATCH) is not None
        assert entry.batch == bucket_batch(BATCH)
        x = _probe()
        np.testing.assert_array_equal(
            predictor(x), Predictor(model, batch_size=BATCH, tuned=False)(x)
        )
