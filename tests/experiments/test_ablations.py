"""Tests for the design-choice ablation experiments."""

import pytest

from repro.experiments import ablations
from repro.experiments.settings import TINY


class TestDreluPipeline:
    @pytest.mark.smoke
    def test_runs_and_orders(self):
        result = ablations.drelu_pipeline_ablation("denoise", TINY)
        # On-the-fly never does worse (paper Section V).
        assert result.psnr_onthefly_db >= result.psnr_naive_db - 0.02
        assert result.psnr_float_db > 0

    def test_format(self):
        result = ablations.drelu_pipeline_ablation("denoise", TINY)
        text = ablations.format_drelu(result)
        assert "on-the-fly" in text and "naive penalty" in text


class TestQformatAblation:
    @pytest.mark.parametrize("n", [2, 4])
    def test_componentwise_always_better(self, n):
        result = ablations.qformat_ablation(n=n)
        assert result.rms_componentwise < result.rms_single
        assert result.improvement > 1.2

    def test_more_word_bits_reduce_error(self):
        coarse = ablations.qformat_ablation(word_bits=6)
        fine = ablations.qformat_ablation(word_bits=10)
        assert fine.rms_componentwise < coarse.rms_componentwise

    def test_format(self):
        assert "Q-format" in ablations.format_qformat(ablations.qformat_ablation())
