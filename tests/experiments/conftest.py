"""Shared fixtures for the orchestration-layer tests."""

import dataclasses

import pytest

from repro.experiments import artifacts, registry


@dataclasses.dataclass(frozen=True)
class FakeRow:
    """Tiny deterministic result row for registry/CLI tests."""

    label: str
    value: float


@pytest.fixture()
def fake_experiment():
    """Register a cheap counting experiment; unregister on teardown.

    Yields ``(experiment, calls)`` where ``calls`` is a list that grows
    by one entry per actual execution — the probe the cache-hit tests
    use to prove nothing was recomputed.
    """
    calls: list[tuple] = []

    def run(rows: int = 2, offset: float = 0.0) -> list[FakeRow]:
        calls.append((rows, offset))
        return [FakeRow(label=f"row{i}", value=i + offset) for i in range(rows)]

    def format_result(result: list[FakeRow]) -> str:
        return "\n".join(f"{r.label}: {r.value:.1f}" for r in result)

    experiment = registry.register(
        name="fake-exp",
        description="synthetic experiment for tests",
        run=run,
        format_result=format_result,
        to_jsonable=artifacts.to_jsonable,
        scales={
            "small": {"rows": 2, "offset": 0.0},
            "paper": {"rows": 3, "offset": 0.5},
        },
    )
    try:
        yield experiment, calls
    finally:
        registry.unregister("fake-exp")
