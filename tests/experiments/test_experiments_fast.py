"""Tests for the non-training experiment drivers (hardware tables)."""

import numpy as np
import pytest

from repro.experiments import (
    fig14,
    table1,
    table2,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.settings import PAPER_TABLE3, SMALL, TINY


class TestTable1Experiment:
    @pytest.mark.smoke
    def test_rows_cover_both_n(self):
        rows = table1.run()
        assert {r.n for r in rows} == {2, 4}

    def test_format_contains_efficiencies(self):
        text = table1.format_result()
        assert "R_I4" in text and "4.00x" in text


class TestTable2Experiment:
    def test_all_rows_exact(self):
        for row in table2.run():
            assert row.exact, row.symbol
            assert row.residual < 1e-5

    def test_proper_rings_expose_sign_perm(self):
        rows = {r.symbol: r for r in table2.run()}
        assert rows["C"].sign is not None
        np.testing.assert_array_equal(rows["R_H4"].perm[0], [0, 1, 2, 3])

    def test_format_renders(self):
        text = table2.format_result()
        assert "R_H4-I" in text and "residual" in text


class TestTable5Experiment:
    def test_rows_and_anchors(self):
        rows = table5.run()
        assert [r.name for r in rows] == ["eRingCNN-n2", "eRingCNN-n4"]
        for row in rows:
            anchor = table5.PAPER_VALUES[row.name]
            assert row.area_mm2 == pytest.approx(anchor["area_mm2"], rel=0.1)
            assert row.power_w == pytest.approx(anchor["power_w"], rel=0.1)
            assert row.equivalent_tops == pytest.approx(41.0, abs=0.5)

    def test_mac_halving(self):
        rows = table5.run()
        assert rows[0].macs_per_cycle == 2 * rows[1].macs_per_cycle

    def test_format(self):
        assert "DRAM bandwidth" in table5.format_result()


class TestTable6Experiment:
    def test_breakdown_sums_to_total(self):
        for row in table6.run():
            assert sum(row.areas_mm2.values()) > 0
            assert row.conv_area_fraction == pytest.approx(
                row.areas_mm2["conv_engines"] / sum(row.areas_mm2.values())
            )

    def test_drelu_share_larger_for_n4(self):
        rows = {r.name: r for r in table6.run()}
        assert (
            rows["eRingCNN-n4"].drelu_share_3x3 > 2 * rows["eRingCNN-n2"].drelu_share_3x3
        )

    def test_format(self):
        assert "conv share" in table6.format_result()


class TestFig14Experiment:
    def test_gains_close_to_paper(self):
        for g in fig14.run():
            anchors = fig14.PAPER_GAINS[g.name]
            assert g.engine_area_gain == pytest.approx(anchors["engine_area"], rel=0.12)
            assert g.engine_energy_gain == pytest.approx(anchors["engine_energy"], rel=0.12)

    def test_format(self):
        assert "eRingCNN-n4" in fig14.format_result()


class TestTable7Experiment:
    def test_gains_in_paper_ballpark(self):
        rows = {r.name: r for r in table7.run()}
        assert rows["eRingCNN-n2"].gain_vs_reference == pytest.approx(2.71, rel=0.3)
        assert rows["eRingCNN-n4"].gain_vs_reference == pytest.approx(4.59, rel=0.3)

    def test_format(self):
        assert "Diffy" in table7.format_result()


class TestTable8Experiment:
    def test_ring_band(self):
        rows = {r.name: r for r in table8.run()}
        lo, hi = table8.PAPER_BAND
        assert lo * 0.7 < rows["eRingCNN-n2"].equivalent_tops_per_watt
        assert rows["eRingCNN-n4"].equivalent_tops_per_watt < hi * 1.3

    def test_ordering_vs_other_sparsity(self):
        rows = {r.name: r for r in table8.run()}
        assert (
            rows["eRingCNN-n2"].equivalent_tops_per_watt
            > rows["CirCNN"].equivalent_tops_per_watt
            > rows["SparTen"].equivalent_tops_per_watt
        )

    def test_format(self):
        assert "SparTen" in table8.format_result()


class TestSettings:
    def test_paper_table3_recipes(self):
        assert set(PAPER_TABLE3) == {"lightweight", "polishment", "finetune-8bit"}
        assert all(s.optimizer == "Adam" for s in PAPER_TABLE3.values())

    def test_scales_ordered(self):
        assert TINY.epochs < SMALL.epochs
        assert TINY.train_count < SMALL.train_count
