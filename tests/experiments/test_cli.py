"""Tests for ``python -m repro`` (`repro.experiments.cli`)."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.experiments import registry
from repro.experiments.cli import build_parser, main, run_one

SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "small"
        assert args.jobs == 1
        assert not args.force

    def test_scale_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])


@pytest.mark.smoke
class TestListCommand:
    def test_lists_every_registered_experiment(self, tmp_path, capsys):
        assert main(["list", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    def test_marks_cached_entries(self, tmp_path, capsys, fake_experiment):
        main(["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)])
        capsys.readouterr()
        main(["list", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "[cached: small]" in out


class TestRunCommand:
    def test_unknown_experiment_exits_with_hint(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["run", "table99", "--results-dir", str(tmp_path)])

    def test_writes_artifact_json(self, tmp_path, fake_experiment):
        assert (
            main(["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)])
            == 0
        )
        files = list(tmp_path.glob("fake-exp--small--*.json"))
        assert len(files) == 1
        data = json.loads(files[0].read_text())
        assert data["experiment"] == "fake-exp"
        assert data["formatted"] == "row0: 0.0\nrow1: 1.0"
        assert data["result"] == [
            {"label": "row0", "value": 0.0},
            {"label": "row1", "value": 1.0},
        ]

    def test_cache_hit_is_reported(self, tmp_path, capsys, fake_experiment):
        argv = ["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)]
        main(argv)
        capsys.readouterr()
        main(argv)
        assert "cache hit" in capsys.readouterr().out

    def test_duplicate_names_run_once(self, tmp_path, fake_experiment):
        _, calls = fake_experiment
        main(
            [
                "run",
                "fake-exp",
                "fake-exp",
                "--scale",
                "small",
                "--results-dir",
                str(tmp_path),
            ]
        )
        assert len(calls) == 1


class TestFaultIsolation:
    def test_one_failure_does_not_discard_other_results(
        self, tmp_path, capsys, fake_experiment
    ):
        from repro.experiments import artifacts, registry

        registry.register(
            name="fake-broken",
            description="always raises",
            run=lambda: (_ for _ in ()).throw(RuntimeError("boom")),
            format_result=str,
            scales={"small": {}, "paper": {}},
        )
        try:
            code = main(
                [
                    "run",
                    "fake-broken",
                    "fake-exp",
                    "--scale",
                    "small",
                    "--results-dir",
                    str(tmp_path),
                ]
            )
        finally:
            registry.unregister("fake-broken")
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED RuntimeError: boom" in out
        assert "1 failed: fake-broken" in out
        # The healthy experiment's artifact was still computed and saved.
        assert len(list(tmp_path.glob("fake-exp--small--*.json"))) == 1
        assert artifacts.ArtifactStore(tmp_path).latest("fake-exp", "small") is not None


class TestReportCommand:
    def test_missing_artifact_for_named_experiment_fails(self, tmp_path, capsys):
        assert main(["report", "table1", "--results-dir", str(tmp_path)]) == 1
        assert "no cached artifact" in capsys.readouterr().out

    def test_report_all_with_empty_cache_succeeds(self, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path)]) == 0

    def test_renders_cached_formatted_text(self, tmp_path, capsys, fake_experiment):
        main(["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)])
        capsys.readouterr()
        assert (
            main(["report", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "== fake-exp (small" in out
        assert "row1: 1.0" in out

    def test_report_does_not_recompute(self, tmp_path, fake_experiment):
        _, calls = fake_experiment
        main(["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)])
        main(["report", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)])
        assert len(calls) == 1


class TestDeterminism:
    @pytest.mark.smoke
    def test_run_one_is_reproducible_in_process(self):
        first = run_one("table1", "small")
        second = run_one("table1", "small")
        assert first == second

    def test_parallel_jobs_bit_identical_to_serial(self, tmp_path):
        """`--jobs 2` must produce byte-identical artifacts to a serial run."""
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        names = ["table1", "table2"]
        assert (
            main(["run", *names, "--scale", "small", "--results-dir", str(serial_dir)])
            == 0
        )
        assert (
            main(
                [
                    "run",
                    *names,
                    "--scale",
                    "small",
                    "--jobs",
                    "2",
                    "--results-dir",
                    str(parallel_dir),
                ]
            )
            == 0
        )
        serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
        parallel_files = sorted(p.name for p in parallel_dir.glob("*.json"))
        assert serial_files == parallel_files and len(serial_files) == len(names)
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (parallel_dir / name).read_bytes()


class TestTrainCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["train", "denoise:real"])
        assert args.model == "denoise:real"
        assert args.epochs is None
        assert not args.resume
        assert args.save_every == 1

    def test_unknown_task_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown task"):
            main(["train", "segmentation:real", "--results-dir", str(tmp_path)])

    def test_unknown_kind_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown algebra kind"):
            main(["train", "denoise:nosuchring", "--results-dir", str(tmp_path)])

    def test_resume_without_checkpoint_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoint"):
            main(
                [
                    "train", "denoise:real", "--resume",
                    "--checkpoint", str(tmp_path / "missing.npz"),
                    "--results-dir", str(tmp_path),
                ]
            )

    def test_train_then_resume_is_bit_identical(self, tmp_path, capsys):
        import numpy as np

        base = [
            "train", "denoise:real", "--scale", "small",
            "--epochs", "4", "--results-dir", str(tmp_path),
        ]
        straight = tmp_path / "straight.npz"
        assert main(base + ["--checkpoint", str(straight)]) == 0
        seg = tmp_path / "seg.npz"
        assert main(base + ["--checkpoint", str(seg), "--train-epochs", "2"]) == 0
        assert main(
            [
                "train", "denoise:real", "--scale", "small", "--resume",
                "--checkpoint", str(seg), "--results-dir", str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed epoch 2" in out
        with np.load(straight) as a, np.load(seg) as b:
            keys = [k for k in a.files if k.startswith("model/")]
            assert keys
            for key in keys:
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)

    def test_fully_trained_checkpoint_resumes_to_noop(self, tmp_path, capsys):
        ckpt = tmp_path / "done.npz"
        base = [
            "train", "denoise:real", "--scale", "small", "--epochs", "2",
            "--checkpoint", str(ckpt), "--results-dir", str(tmp_path),
        ]
        assert main(base) == 0
        assert main(base + ["--resume"]) == 0
        assert "nothing to train" in capsys.readouterr().out


class TestWarmStartFlag:
    def test_run_warm_start_sets_env_and_reuses_weights(
        self, tmp_path, monkeypatch, fake_experiment
    ):
        from repro.experiments import weights

        # setenv first so teardown restores the pre-test state even
        # though cmd_run mutates os.environ directly.
        monkeypatch.setenv(weights.WARM_START_ENV, "0")
        monkeypatch.setenv(weights.WEIGHTS_DIR_ENV, "")
        assert not weights.warm_start_enabled()
        assert (
            main(
                [
                    "run", "fake-exp", "--scale", "small", "--warm-start",
                    "--results-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert weights.warm_start_enabled()
        # --results-dir isolates the weight cache like the artifacts.
        assert weights.weights_root() == tmp_path / "weights"


class TestModuleEntryPoint:
    def test_python_dash_m_repro_list(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list", "--results-dir", str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "table1" in proc.stdout
