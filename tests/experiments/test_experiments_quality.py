"""Integration tests for the training-based experiments (paper claims).

These train tiny models; they are marked slow where multi-run averaging
is needed.  The assertions check the *shape* of the paper's findings —
who wins, not absolute dB.
"""

import numpy as np
import pytest

from repro.experiments import fig01, fig09, fig10, fig11, fig12, fig13, fig15, figc1, table4
from repro.experiments.runner import make_task, run_quality
from repro.experiments.settings import SMALL, TINY
from repro.imaging.metrics import average_psnr


class TestRunner:
    @pytest.mark.smoke
    def test_denoise_model_beats_noisy_input(self):
        data = make_task("denoise", SMALL)
        noisy_psnr = average_psnr(data.test_inputs, data.test_targets, shave=2)
        res = run_quality("proposed", "denoise", SMALL, data=data)
        assert res.psnr_db > noisy_psnr

    def test_sr_model_beats_bicubic(self):
        from repro.imaging.degrade import bicubic_upsample

        data = make_task("sr4", SMALL)
        bicubic = average_psnr(
            bicubic_upsample(data.test_inputs, 4), data.test_targets, shave=2
        )
        res = run_quality("proposed", "sr4", SMALL, data=data)
        assert res.psnr_db >= bicubic

    def test_ring_param_reduction(self):
        data = make_task("denoise", TINY)
        real = run_quality("real", "denoise", TINY, data=data)
        ring = run_quality("ri4+fcw", "denoise", TINY, data=data)
        assert ring.parameters < real.parameters / 2

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            make_task("segmentation", TINY)


@pytest.mark.slow
class TestFig9Claims:
    def test_directional_relu_recovers_capacity(self):
        # Paper: R_I + f_cw is worst; (R_I, f_H) recovers model capacity.
        data = make_task("denoise", SMALL)
        kinds = ["ri4+fcw", "ri4+fh"]
        result = fig09.run("denoise", 4, SMALL, kinds=kinds, seeds=(0, 1, 2), data=data)
        assert result.psnr_of("ri4+fh") > result.psnr_of("ri4+fcw")

    def test_n2_competitive_with_real(self):
        # Paper: n=2 RingCNN has similar or even better quality than real.
        data = make_task("denoise", SMALL)
        result = fig09.run(
            "denoise", 2, SMALL, kinds=["real", "ri2+fh"], seeds=(0, 1, 2), data=data
        )
        assert result.psnr_of("ri2+fh") > result.psnr_of("real") - 0.15

    def test_format(self):
        data = make_task("denoise", TINY)
        result = fig09.run("denoise", 4, TINY, kinds=["ri4+fh"], seeds=(0,), data=data)
        assert "Fig.9" in fig09.format_result(result)


class TestFig10:
    def test_three_variants_run(self):
        result = fig10.run("sr4", TINY)
        assert result.baseline.psnr_db > 0
        assert result.transformed.psnr_db > 0
        assert result.modified.psnr_db > 0

    @pytest.mark.slow
    def test_structure_modification_helps(self):
        # Paper: "structure modification improves image quality most of
        # the time" — check on the default task/seed.
        result = fig10.run("sr4", SMALL)
        assert result.modified.psnr_db >= result.baseline.psnr_db - 0.1

    def test_transformed_layer_spans_same_family(self):
        # W = Tz diag(g~) Tx must reproduce an arbitrary R_H4 matrix.
        from repro.experiments.fig10 import TransformedRingConv2d
        from repro.nn.tensor import Tensor
        from repro.rings.catalog import get_ring

        spec = get_ring("rh4")
        layer = TransformedRingConv2d(4, 4, 1, spec, bias=False, seed=0)
        rng = np.random.default_rng(0)
        g = rng.standard_normal(4)
        layer.g_t.data[0, 0, :, 0, 0] = spec.fast.transform_filter(g)
        x = rng.standard_normal((1, 4, 3, 3))
        out = layer(Tensor(x)).data
        expect = np.einsum("ij,ncjhw->ncihw", spec.ring.isomorphic_matrix(g), x.reshape(1, 1, 4, 3, 3))
        np.testing.assert_allclose(out, expect.reshape(1, 4, 3, 3), atol=1e-8)


@pytest.mark.slow
class TestFig11Claims:
    def test_ring_beats_pruning_at_matching_compression(self):
        # Paper Fig. 11: (R_I, f_H) outperforms magnitude pruning.
        points = fig11.run("denoise", SMALL, compressions=(4.0,))
        by = {(p.method, p.compression): p.psnr_db for p in points}
        assert by[("ring", 4.0)] > by[("pruning", 4.0)] - 0.05

    def test_point_set_complete(self):
        points = fig11.run("denoise", TINY, compressions=(2.0,))
        methods = {(p.method, p.compression) for p in points}
        assert ("original", 1.0) in methods
        assert ("pruning", 2.0) in methods
        assert ("ring", 2.0) in methods


class TestFig1:
    def test_points_and_efficiencies(self):
        points = fig01.run(scale=TINY, blocks=1, width=8, compressions=(2.0,))
        by = {p.method: p for p in points}
        assert by["SRResNet (1x)"].computation_efficiency == 1.0
        assert by["RingCNN n=2"].computation_efficiency == pytest.approx(2.0, rel=0.2)
        assert by["depth-wise conv"].computation_efficiency > 1.5
        assert by["channel reduction"].computation_efficiency > 1.5

    def test_count_macs(self):
        from repro.models.baselines import SRResNet

        real = fig01.count_macs(SRResNet(blocks=1, width=8, seed=0))
        ring = fig01.count_macs(
            SRResNet(blocks=1, width=8, seed=0, factory=__import__(
                "repro.models.factory", fromlist=["make_factory"]
            ).make_factory("ri2+fh"))
        )
        assert real > 1.7 * ring

    def test_format(self):
        points = fig01.run(scale=TINY, blocks=1, width=8, compressions=())
        assert "SRResNet" in fig01.format_result(points)


class TestFig12And13:
    def test_fig12_identity_ring_best_efficiency(self):
        data = make_task("sr4", TINY)
        points = fig12.run("sr4", TINY, kinds=["real", "ri4+fh", "rh4+fcw"], data=data)
        by = {p.kind: p for p in points}
        assert by["ri4+fh"].area_efficiency > by["rh4+fcw"].area_efficiency > 1.0
        assert by["real"].area_efficiency == 1.0

    def test_fig12_quantization_cost_small(self):
        data = make_task("sr4", TINY)
        points = fig12.run("sr4", TINY, kinds=["ri4+fh"], data=data)
        p = points[0]
        assert abs(p.psnr_float_db - p.psnr_fixed_db) < 1.0

    def test_fig13_rows_and_delta(self):
        targets = [fig13.Fig13Target("Dn-UHD30", "denoise", 1)]
        rows = fig13.run(TINY, kinds=("real", "ri4+fh"), targets=targets)
        assert len(rows) == 2
        delta = fig13.ring_vs_real_delta(rows, "ri4+fh")
        assert np.isfinite(delta)
        assert "drop dB" in fig13.format_result(rows).splitlines()[0]


class TestTable4:
    def test_cnn_beats_classical(self):
        rows = table4.run(TINY, targets=("UHD30",), tasks=("denoise",))
        by = {r.method: r.psnr_db for r in rows}
        assert by["eRingCNN-n2"] > by["CBM3D (stand-in)"]

    def test_all_methods_present(self):
        rows = table4.run(TINY, targets=("UHD30",), tasks=("sr4",))
        methods = {r.method for r in rows}
        assert {"bicubic", "SRResNet", "eCNN (ERNet)", "eRingCNN-n2", "eRingCNN-n4"} <= methods

    def test_classical_denoise_helps(self):
        data = make_task("denoise", TINY)
        cleaned = table4.classical_denoise(data.test_inputs)
        assert cleaned.shape == data.test_inputs.shape


class TestFig15:
    def test_ring_curves_use_less_energy(self):
        points = fig15.run("denoise", TINY, block_sweep=(1,))
        by = {p.accelerator: p for p in points}
        assert (
            by["eRingCNN-n4"].energy_per_pixel_nj
            < by["eRingCNN-n2"].energy_per_pixel_nj
            < by["eCNN"].energy_per_pixel_nj
        )

    def test_energy_grows_with_depth(self):
        points = fig15.run("denoise", TINY, block_sweep=(1, 2))
        n2 = sorted(
            (p for p in points if p.accelerator == "eRingCNN-n2"), key=lambda p: p.blocks
        )
        assert n2[1].energy_per_pixel_nj > n2[0].energy_per_pixel_nj


@pytest.mark.slow
class TestFigC1:
    def test_ring_beats_structured_pruning(self):
        points = figc1.run(epochs=12, train_count=160, test_count=50)
        by = {p.method: p.accuracy for p in points}
        assert by["RingCNN n=2"] > by["LeGR (2x)"]
        assert by["RingCNN n=4"] > 0.5

    def test_classification_data_learnable_labels(self):
        x, y = figc1.make_classification_data(64, seed=0)
        assert x.shape == (64, 1, 16, 16)
        assert set(np.unique(y)) <= set(range(10))
