"""Tests for the fingerprinted weight cache and warm-started experiments."""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments import registry, weights
from repro.experiments.cli import run_one
from repro.experiments.runner import make_task, run_quality
from repro.experiments.settings import TINY
from repro.nn.trainer import TrainConfig

FAST = dataclasses.replace(TINY, train_count=8, test_count=2, size=16, epochs=2)


@pytest.fixture()
def warm_cache(tmp_path, monkeypatch):
    """Warm starts enabled, cache redirected into tmp_path."""
    monkeypatch.setenv(weights.WEIGHTS_DIR_ENV, str(tmp_path / "weights"))
    monkeypatch.setenv(weights.WARM_START_ENV, "1")
    return tmp_path / "weights"


class TestFingerprint:
    @pytest.mark.smoke
    def test_env_parsing(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv(weights.WARM_START_ENV, value)
            assert weights.warm_start_enabled() is expected
        monkeypatch.delenv(weights.WARM_START_ENV)
        assert weights.warm_start_enabled() is False

    def test_fingerprint_tracks_spec_and_config(self):
        config = TrainConfig(epochs=2, lr=1e-3)
        base = weights.training_fingerprint({"kind": "real"}, config)
        assert base == weights.training_fingerprint({"kind": "real"}, config)
        assert base != weights.training_fingerprint({"kind": "ri2+fh"}, config)
        assert base != weights.training_fingerprint(
            {"kind": "real"}, TrainConfig(epochs=3, lr=1e-3)
        )
        assert base != weights.training_fingerprint(
            {"kind": "real"}, TrainConfig(epochs=2, lr=2e-3)
        )


class TestWarmStart:
    def test_cold_and_warm_results_identical(self, warm_cache, monkeypatch):
        data = make_task("denoise", FAST)
        monkeypatch.delenv(weights.WARM_START_ENV)
        cold = run_quality("real", "denoise", FAST, data=data)
        monkeypatch.setenv(weights.WARM_START_ENV, "1")
        populate = run_quality("real", "denoise", FAST, data=data)  # trains + stores
        warm = run_quality("real", "denoise", FAST, data=data)  # pure cache hit
        assert list(warm_cache.glob("*.npz")), "no cache entry written"
        for other in (populate, warm):
            assert other.psnr_db == cold.psnr_db
            assert other.final_train_loss == cold.final_train_loss
            for name, arr in cold.model.state_dict().items():
                np.testing.assert_array_equal(other.model.state_dict()[name], arr)

    def test_different_data_misses_cache(self, warm_cache):
        # Same recipe, different arrays: the content hash must keep the
        # entries apart (a recipe-keyed cache would alias them).
        data_a = make_task("denoise", FAST)
        data_b = make_task("denoise", dataclasses.replace(FAST, seed=123))
        run_quality("real", "denoise", FAST, data=data_a)
        before = len(list(warm_cache.glob("*.npz")))
        run_quality("real", "denoise", FAST, data=data_b)
        assert len(list(warm_cache.glob("*.npz"))) == before + 1

    def test_corrupt_cache_entry_degrades_to_retrain(self, warm_cache):
        data = make_task("denoise", FAST)
        first = run_quality("real", "denoise", FAST, data=data)
        (entry,) = warm_cache.glob("*.npz")
        entry.write_bytes(b"garbage")
        again = run_quality("real", "denoise", FAST, data=data)
        assert again.psnr_db == first.psnr_db

    def test_disabled_by_default_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(weights.WEIGHTS_DIR_ENV, str(tmp_path / "weights"))
        monkeypatch.delenv(weights.WARM_START_ENV, raising=False)
        run_quality("real", "denoise", FAST)
        assert not (tmp_path / "weights").exists()

    def test_cache_shared_across_labels(self, warm_cache):
        # Lookup is by fingerprint, not label: two experiments training
        # the identical model under different labels share one bundle.
        data = make_task("denoise", FAST)
        first = run_quality("real", "denoise", FAST, data=data)
        (entry,) = warm_cache.glob("*.npz")
        relabeled = warm_cache / f"other-label--{entry.name.split('--')[1]}"
        entry.rename(relabeled)
        before = relabeled.stat().st_mtime_ns
        again = run_quality("real", "denoise", FAST, data=data)
        assert again.psnr_db == first.psnr_db
        assert len(list(warm_cache.glob("*.npz"))) == 1  # no duplicate stored
        assert relabeled.stat().st_mtime_ns == before

    def test_weights_dir_env_isolates_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv(weights.WARM_START_ENV, "1")
        monkeypatch.setenv(weights.WEIGHTS_DIR_ENV, str(tmp_path / "a"))
        data = make_task("denoise", FAST)
        run_quality("real", "denoise", FAST, data=data)
        assert list((tmp_path / "a").glob("*.npz"))
        monkeypatch.setenv(weights.WEIGHTS_DIR_ENV, str(tmp_path / "b"))
        run_quality("real", "denoise", FAST, data=data)
        assert list((tmp_path / "b").glob("*.npz"))


class TestArtifactByteIdentity:
    """The acceptance criterion: warm-started artifact == cold artifact, byte for byte."""

    @pytest.fixture()
    def quality_experiment(self):
        name = "warmtest-exp"
        registry.register(
            name=name,
            description="weight-cache byte-identity probe",
            run=lambda task="denoise": run_quality("real", task, FAST),
            format_result=lambda r: f"{r.psnr_db:.4f}",
            scales={"small": {"task": "denoise"}, "paper": {"task": "denoise"}},
        )
        yield name
        registry.unregister(name)

    def test_warm_artifact_bytes_equal_cold(self, warm_cache, monkeypatch, quality_experiment):
        monkeypatch.delenv(weights.WARM_START_ENV)
        cold = json.dumps(run_one(quality_experiment, "small"), sort_keys=True, indent=2)
        monkeypatch.setenv(weights.WARM_START_ENV, "1")
        populate = json.dumps(run_one(quality_experiment, "small"), sort_keys=True, indent=2)
        warm = json.dumps(run_one(quality_experiment, "small"), sort_keys=True, indent=2)
        assert populate == cold
        assert warm == cold
