"""Tests for the experiment registry (`repro.experiments.registry`)."""

import pytest

import repro.experiments  # noqa: F401  (imports trigger self-registration)
from repro.experiments import registry
from repro.experiments.settings import SMALL, TINY, get_scale

EXPECTED = [
    "table1",
    "table2",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig01",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "figc1",
    "ablations",
]


@pytest.mark.smoke
class TestRegistryContents:
    def test_every_experiment_module_registered_in_paper_order(self):
        assert registry.names() == EXPECTED

    def test_every_experiment_has_required_scales(self):
        for experiment in registry.all_experiments():
            for scale in registry.SCALE_NAMES:
                assert scale in experiment.scales, (experiment.name, scale)

    def test_descriptions_are_one_line(self):
        for experiment in registry.all_experiments():
            assert experiment.description
            assert "\n" not in experiment.description

    def test_get_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="table1"):
            registry.get("table99")


class TestRegistryBehaviour:
    def test_register_rejects_missing_scale_presets(self):
        with pytest.raises(ValueError, match="missing scale presets"):
            registry.register(
                name="broken",
                description="no paper preset",
                run=lambda: None,
                format_result=str,
                to_jsonable=lambda r: r,
                scales={"small": {}},
            )
        assert "broken" not in registry.names()

    def test_register_unregister_roundtrip(self, fake_experiment):
        experiment, _ = fake_experiment
        assert registry.get("fake-exp") is experiment
        registry.unregister("fake-exp")
        assert "fake-exp" not in registry.names()

    def test_kwargs_for_unknown_scale_raises(self):
        with pytest.raises(KeyError, match="no scale"):
            registry.get("table1").kwargs_for("huge")

    def test_seed_is_stable_and_scale_dependent(self):
        experiment = registry.get("fig01")
        assert experiment.seed_for("small") == experiment.seed_for("small")
        assert experiment.seed_for("small") != experiment.seed_for("paper")
        assert experiment.seed_for("small") != registry.get("fig09").seed_for("small")

    def test_execute_runs_scale_preset(self, fake_experiment):
        experiment, calls = fake_experiment
        result = experiment.execute("paper")
        assert calls == [(3, 0.5)]
        assert [row.value for row in result] == [0.5, 1.5, 2.5]

    def test_small_presets_use_tiny_training_scale(self):
        # Smoke scale must stay seconds-cheap: every training experiment's
        # "small" preset that carries a QualityScale carries TINY.
        for experiment in registry.all_experiments():
            scale = experiment.kwargs_for("small").get("scale")
            if scale is not None:
                assert scale == TINY, experiment.name

    def test_scale_lookup_helper(self):
        assert get_scale("paper") == SMALL
        assert get_scale("small") == TINY
        with pytest.raises(KeyError, match="unknown scale"):
            get_scale("galactic")
