"""Tests for the artifact store (`repro.experiments.artifacts`)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments import artifacts
from repro.experiments.artifacts import (
    Artifact,
    ArtifactStore,
    canonical_json,
    fingerprint,
    resolved_settings,
    settings_digest,
    to_jsonable,
)
from repro.experiments.runner import QualityResult
from repro.nn.layers import Conv2d


@dataclasses.dataclass(frozen=True)
class Sample:
    name: str
    values: tuple[float, ...]
    matrix: np.ndarray


@pytest.mark.smoke
class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable({"a": 1, "b": [True, None, "x", 2.5]}) == {
            "a": 1,
            "b": [True, None, "x", 2.5],
        }

    def test_numpy_arrays_and_scalars(self):
        out = to_jsonable({"m": np.arange(4).reshape(2, 2), "s": np.float64(1.5)})
        assert out == {"m": [[0, 1], [2, 3]], "s": 1.5}

    def test_dataclasses_recurse(self):
        sample = Sample(name="s", values=(1.0, 2.0), matrix=np.eye(2))
        assert to_jsonable(sample) == {
            "name": "s",
            "values": [1.0, 2.0],
            "matrix": [[1.0, 0.0], [0.0, 1.0]],
        }

    def test_modules_are_dropped(self):
        assert to_jsonable(Conv2d(2, 2, 3, seed=0)) is None

    def test_quality_result_adapter_drops_model(self):
        result = QualityResult(
            label="real",
            task="denoise",
            psnr_db=30.0,
            parameters=10,
            final_train_loss=0.5,
            model=Conv2d(2, 2, 3, seed=0),
        )
        out = to_jsonable(result)
        assert "model" not in out
        assert out["psnr_db"] == 30.0

    def test_result_is_json_serializable(self):
        payload = to_jsonable({"rows": [Sample("a", (0.5,), np.zeros(2))]})
        json.dumps(payload)  # must not raise

    def test_colliding_mapping_keys_raise(self):
        # {1: ..., "1": ...} would silently drop an entry (and alias
        # fingerprints) if keys were coerced blindly.
        with pytest.raises(ValueError, match="collide"):
            to_jsonable({1: "a", "1": "b"})


class TestFingerprint:
    def test_stable_across_calls_and_key_order(self):
        a = fingerprint("fig01", "small", {"blocks": 1, "width": 8})
        b = fingerprint("fig01", "small", {"width": 8, "blocks": 1})
        assert a == b
        assert len(a) == 16

    def test_changed_scale_changes_fingerprint(self):
        settings = {"blocks": 1}
        assert fingerprint("fig01", "small", settings) != fingerprint(
            "fig01", "paper", settings
        )

    def test_changed_settings_change_fingerprint(self):
        assert fingerprint("fig01", "small", {"blocks": 1}) != fingerprint(
            "fig01", "small", {"blocks": 2}
        )

    def test_changed_experiment_changes_fingerprint(self):
        assert fingerprint("fig01", "small", {}) != fingerprint("fig09", "small", {})

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": (2,)}) == '{"a":[2],"b":1}'


class TestResolvedSettings:
    @staticmethod
    def _experiment(run, preset=None):
        class _Stub:
            name = "stub"

            def __init__(self):
                self.run = run

            def kwargs_for(self, scale):
                return dict(preset or {})

        return _Stub()

    def test_includes_run_signature_defaults(self):
        exp = self._experiment(lambda rows=2, offset=0.0: None)
        assert resolved_settings(exp, "small") == {"rows": 2, "offset": 0.0}

    def test_preset_overrides_default(self):
        exp = self._experiment(lambda rows=2: None, preset={"rows": 5})
        assert resolved_settings(exp, "small") == {"rows": 5}

    def test_changed_default_changes_fingerprint(self):
        # A code edit to a run() default must be a cache miss even when
        # the registered preset doesn't pin that parameter.
        _, a = settings_digest(self._experiment(lambda rows=2: None), "small")
        _, b = settings_digest(self._experiment(lambda rows=3: None), "small")
        assert a != b


class TestArtifactStore:
    def _artifact(self, **overrides):
        base = dict(
            experiment="fake-exp",
            scale="small",
            fingerprint=fingerprint("fake-exp", "small", {"rows": 2}),
            settings={"rows": 2},
            result=[{"label": "row0", "value": 0.0}],
            formatted="row0: 0.0",
        )
        base.update(overrides)
        return Artifact(**base)

    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = self._artifact()
        path = store.save(artifact)
        assert path.exists()
        loaded = store.load("fake-exp", "small", artifact.fingerprint)
        assert loaded == artifact

    def test_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("fake-exp", "small", "0" * 16) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = self._artifact()
        path = store.save(artifact)
        data = json.loads(path.read_text())
        data["schema_version"] = -1
        path.write_text(json.dumps(data))
        assert store.load("fake-exp", "small", artifact.fingerprint) is None

    def test_latest_prefers_valid_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = self._artifact()
        store.save(artifact)
        assert store.latest("fake-exp", "small") == artifact
        assert store.latest("fake-exp", "paper") is None

    def test_corrupt_artifact_file_is_a_miss(self, tmp_path):
        # A run killed mid-write must degrade to recompute, not crash.
        store = ArtifactStore(tmp_path)
        artifact = self._artifact()
        path = store.save(artifact)
        path.write_text('{"experiment": "fake-exp", "truncat')
        assert store.load("fake-exp", "small", artifact.fingerprint) is None
        assert store.latest("fake-exp", "small") is None

    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(self._artifact())
        assert not list(tmp_path.glob("*.tmp"))

    def test_save_bytes_are_deterministic(self, tmp_path):
        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        artifact = self._artifact()
        text_a = store_a.save(artifact).read_text()
        text_b = store_b.save(artifact).read_text()
        assert text_a == text_b


class TestCacheSemantics:
    """The registry+store contract the CLI relies on."""

    def test_same_fingerprint_is_a_cache_hit_without_recompute(
        self, tmp_path, fake_experiment
    ):
        from repro.experiments.cli import main

        _, calls = fake_experiment
        argv = ["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)]
        assert main(argv) == 0
        assert len(calls) == 1
        assert main(argv) == 0  # second invocation: artifact already stored
        assert len(calls) == 1, "cache hit must not re-execute the experiment"

    def test_changed_scale_is_a_cache_miss(self, tmp_path, fake_experiment):
        from repro.experiments.cli import main

        _, calls = fake_experiment
        base = ["run", "fake-exp", "--results-dir", str(tmp_path)]
        assert main(base + ["--scale", "small"]) == 0
        assert main(base + ["--scale", "paper"]) == 0
        assert len(calls) == 2, "a different scale preset must recompute"

    def test_force_recomputes(self, tmp_path, fake_experiment):
        from repro.experiments.cli import main

        _, calls = fake_experiment
        argv = ["run", "fake-exp", "--scale", "small", "--results-dir", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv + ["--force"]) == 0
        assert len(calls) == 2

    def test_changed_settings_change_the_artifact_file(self, tmp_path, fake_experiment):
        experiment, _ = fake_experiment
        small = artifacts.fingerprint(
            "fake-exp", "small", to_jsonable(experiment.kwargs_for("small"))
        )
        paper = artifacts.fingerprint(
            "fake-exp", "paper", to_jsonable(experiment.kwargs_for("paper"))
        )
        assert small != paper
