"""Tests for the shared spawn-worker helpers (repro.experiments.spawn)."""

import multiprocessing
import zlib

from repro.experiments import registry
from repro.experiments.spawn import (
    ensure_registered,
    export_env,
    spawn_context,
    worker_seed,
)
from repro.nn import backend as nn_backend


class TestWorkerSeed:
    def test_deterministic_and_stable(self):
        # The exact historical formula: crc32 of the colon-joined parts,
        # masked to 31 bits.  Experiment artifact fingerprints depend on
        # it, so it must never drift.
        assert worker_seed("table1", "small") == (
            zlib.crc32(b"table1:small") & 0x7FFFFFFF
        )
        assert worker_seed("table1", "small") == worker_seed("table1", "small")
        assert worker_seed("table1", "small") != worker_seed("table1", "paper")

    def test_accepts_any_stringable_parts(self):
        assert worker_seed("bench", 3, 1.5) == (
            zlib.crc32(b"bench:3:1.5") & 0x7FFFFFFF
        )

    def test_range_fits_numpy_seed(self):
        for parts in [("a",), ("b", "c"), ("x", 123)]:
            seed = worker_seed(*parts)
            assert 0 <= seed < 2**31

    def test_registry_seed_for_uses_worker_seed(self):
        ensure_registered()
        experiment = registry.get("table1")
        assert experiment.seed_for("small") == worker_seed("table1", "small")


class TestSpawnContext:
    def test_spawn_start_method(self):
        context = spawn_context()
        assert isinstance(context, multiprocessing.context.SpawnContext)
        assert context.get_start_method() == "spawn"


class TestExportEnv:
    def test_sets_process_environment(self, monkeypatch):
        monkeypatch.delenv(nn_backend.BACKEND_ENV_VAR, raising=False)
        export_env(nn_backend.BACKEND_ENV_VAR, "threaded:2")
        import os

        assert os.environ[nn_backend.BACKEND_ENV_VAR] == "threaded:2"


class TestEnsureRegistered:
    def test_idempotent_and_populates_registry(self):
        ensure_registered()
        ensure_registered()
        names = registry.names()
        assert "table1" in names and "fig09" in names
