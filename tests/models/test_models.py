"""Tests for the model zoo and algebra factories."""

import numpy as np
import pytest

from repro.models.baselines import FFDNet, SRResNet, VDSR
from repro.models.ernet import ERNetConfig, dn_ernet_pu, parse_config_name, sr4_ernet
from repro.models.factory import (
    DepthwiseFactory,
    RealFactory,
    RingFactory,
    identity_ring_tensor,
    make_factory,
)
from repro.models.resnet import resnet_small
from repro.nn.layers import Conv2d, DirectionalReLU2d, ReLU, RingConv2d, Sequential
from repro.nn.tensor import Tensor
from repro.rings.catalog import get_ring
from repro.rings.nonlinearity import ComponentReLU, hadamard_relu


class TestFactories:
    @pytest.mark.smoke
    def test_real_factory(self):
        f = RealFactory()
        assert isinstance(f.conv(4, 4, 3, seed=0), Conv2d)
        assert isinstance(f.act(4), ReLU)
        assert f.weight_compression() == 1.0

    def test_ring_factory_builds_ring_conv(self):
        f = RingFactory(spec=get_ring("ri4"), nonlinearity=hadamard_relu(4))
        assert isinstance(f.conv(8, 8, 3, seed=0), RingConv2d)
        assert isinstance(f.act(8), DirectionalReLU2d)
        assert f.weight_compression() == 4.0

    def test_ring_factory_falls_back_on_indivisible_channels(self):
        f = RingFactory(spec=get_ring("ri4"), nonlinearity=hadamard_relu(4))
        assert isinstance(f.conv(1, 8, 3, seed=0), Conv2d)
        assert isinstance(f.act(6), ReLU)

    def test_ring_factory_component_relu(self):
        f = RingFactory(spec=get_ring("rh4"), nonlinearity=ComponentReLU(n=4))
        assert isinstance(f.act(8), ReLU)

    def test_depthwise_factory(self):
        f = DepthwiseFactory()
        layer = f.conv(8, 8, 3, seed=0)
        assert isinstance(layer, Sequential)
        out = layer(Tensor(np.zeros((1, 8, 6, 6))))
        assert out.shape == (1, 8, 6, 6)
        # 1x1 convs stay dense.
        assert isinstance(f.conv(8, 8, 1, seed=0), Conv2d)

    def test_depthwise_reduces_weights(self):
        real = RealFactory().conv(16, 16, 3, seed=0)
        dwc = DepthwiseFactory().conv(16, 16, 3, seed=0)
        assert dwc.num_parameters() < real.num_parameters() / 2

    def test_identity_ring_tensor(self):
        m = identity_ring_tensor(3)
        assert m.shape == (3, 3, 3)
        assert m.sum() == 3

    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("real", "real"),
            ("dwc", "dwc"),
            ("proposed", "R_I4+f_H"),
            ("ri2+fh", "R_I2+f_H"),
            ("rh4+fcw", "R_H4+f_cw"),
            ("ri4+fo4", "R_I4+f_O4"),
            ("c", "C+f_cw"),
        ],
    )
    def test_make_factory_names(self, kind, expected):
        assert make_factory(kind).name == expected

    def test_make_factory_unknown_nonlinearity(self):
        with pytest.raises(KeyError):
            make_factory("ri4+bogus")


class TestERNet:
    def test_config_name(self):
        cfg = ERNetConfig(task="sr4", blocks=17, ratio=3, extra_layers=1)
        assert cfg.name == "SR4ERNet-B17R3N1"
        assert parse_config_name("B17R3N1") == (17, 3, 1)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_config_name("B17R3")

    def test_denoise_shape_preserved(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
        x = Tensor(np.random.default_rng(0).random((2, 1, 8, 8)))
        assert model(x).shape == (2, 1, 8, 8)

    def test_sr4_upscales_by_four(self):
        model = sr4_ernet(blocks=1, ratio=1, seed=0)
        x = Tensor(np.random.default_rng(0).random((1, 1, 4, 4)))
        assert model(x).shape == (1, 1, 16, 16)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            dn_ernet_pu().__class__(ERNetConfig(task="segmentation"))

    def test_ring_variant_weight_reduction(self):
        real = sr4_ernet(blocks=2, ratio=2, seed=0)
        ring = sr4_ernet(blocks=2, ratio=2, factory=make_factory("proposed"), seed=0)
        # Body convolutions shrink ~4x; head/tail stay real.
        assert ring.num_parameters() < real.num_parameters() / 2.2

    def test_extra_pumping_layers_increase_params(self):
        small = sr4_ernet(blocks=1, ratio=1, extra_layers=0, seed=0)
        big = sr4_ernet(blocks=1, ratio=1, extra_layers=2, seed=0)
        assert big.num_parameters() > small.num_parameters()

    @pytest.mark.parametrize("kind", ["real", "proposed", "rh4+fcw", "c", "dwc"])
    def test_all_factories_run_forward(self, kind):
        model = dn_ernet_pu(blocks=1, ratio=1, factory=make_factory(kind), seed=0)
        x = Tensor(np.random.default_rng(1).random((1, 1, 8, 8)))
        out = model(x)
        assert out.shape == (1, 1, 8, 8)
        assert np.all(np.isfinite(out.data))

    def test_denoise_residual_path(self):
        # With zero weights the tail contributes nothing; the global skip
        # must pass the input straight through.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
        for _, p in model.named_parameters():
            p.data[...] = 0.0
        x = np.random.default_rng(2).random((1, 1, 8, 8))
        np.testing.assert_allclose(model(Tensor(x)).data, x, atol=1e-12)


class TestBaselines:
    def test_srresnet_shapes(self):
        model = SRResNet(blocks=2, width=8, seed=0)
        out = model(Tensor(np.random.default_rng(0).random((1, 1, 4, 4))))
        assert out.shape == (1, 1, 16, 16)

    def test_vdsr_shapes(self):
        model = VDSR(depth=3, width=8, seed=0)
        out = model(Tensor(np.random.default_rng(0).random((1, 1, 4, 4))))
        assert out.shape == (1, 1, 16, 16)

    def test_vdsr_zero_net_is_bicubic(self):
        model = VDSR(depth=3, width=8, seed=0)
        for _, p in model.named_parameters():
            p.data[...] = 0.0
        from repro.imaging.degrade import bicubic_upsample

        x = np.random.default_rng(1).random((1, 1, 4, 4))
        np.testing.assert_allclose(
            model(Tensor(x)).data, bicubic_upsample(x, 4), atol=1e-12
        )

    def test_ffdnet_shapes(self):
        model = FFDNet(depth=3, width=8, seed=0)
        out = model(Tensor(np.random.default_rng(0).random((2, 1, 8, 8))))
        assert out.shape == (2, 1, 8, 8)

    def test_srresnet_with_ring_factory(self):
        model = SRResNet(blocks=1, width=8, factory=make_factory("ri2+fh"), seed=0)
        out = model(Tensor(np.random.default_rng(0).random((1, 1, 4, 4))))
        assert out.shape == (1, 1, 16, 16)


class TestResNet:
    def test_logit_shape(self):
        model = resnet_small(blocks_per_stage=1, base_width=4, num_classes=7, seed=0)
        out = model(Tensor(np.random.default_rng(0).random((2, 1, 16, 16))))
        assert out.shape == (2, 7)

    def test_ring_factory_keeps_bn_real(self):
        # Appendix C: convolutions use (R_I, f_H); BN stays real-valued.
        model = resnet_small(
            blocks_per_stage=1, base_width=4, factory=make_factory("proposed"), seed=0
        )
        kinds = [type(m).__name__ for m in model.modules()]
        assert "BatchNorm2d" in kinds
        assert "RingConv2d" in kinds

    def test_strided_stage_reduces_resolution(self):
        model = resnet_small(blocks_per_stage=1, base_width=4, seed=0)
        feat = model.stem_act(model.stem_bn(model.stem(Tensor(np.zeros((1, 1, 16, 16))))))
        out = model.stages(feat)
        assert out.shape[-1] == 4  # two stride-2 stages: 16 -> 8 -> 4
