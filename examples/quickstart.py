"""Quickstart: ring algebra, ring convolution, and the paper's Table I.

Runs in a few seconds::

    python examples/quickstart.py
"""

import numpy as np

from repro.nn.layers import RingConv2d
from repro.nn.tensor import Tensor
from repro.rings.catalog import get_ring, proposed_pair
from repro.rings.properties import format_table1


def main() -> None:
    # --- 1. ring arithmetic -------------------------------------------------
    spec = get_ring("C")  # the complex field as a 2-tuple ring
    g = np.array([3.0, 4.0])  # 3 + 4i
    x = np.array([1.0, 2.0])  # 1 + 2i
    print("complex product (3+4i)(1+2i):", spec.ring.multiply(g, x))
    print("via the 3-mult fast algorithm:", spec.fast.apply(g, x))

    # --- 2. the proposed ring (R_I, f_H) -------------------------------------
    ri4, f_h = proposed_pair(4)
    y = np.array([1.0, -2.0, 0.5, 3.0])
    print("\n(R_I4) component-wise product:", ri4.ring.multiply(g=np.ones(4) * 2, x=y))
    print("directional ReLU f_H(y):      ", np.round(f_h(y), 3))

    # --- 3. a ring convolution layer -----------------------------------------
    layer = RingConv2d(8, 8, 3, ri4.ring, seed=0)
    out = layer(Tensor(np.random.default_rng(0).standard_normal((1, 8, 16, 16))))
    real_weights = 8 * 8 * 9
    print(
        f"\nRingConv2d 8->8 3x3: output {out.shape}, "
        f"{layer.g.size} ring weights vs {real_weights} real-valued "
        f"({real_weights // layer.g.size}x reduction)"
    )

    # --- 4. Table I -----------------------------------------------------------
    print("\nPaper Table I (ring properties):")
    print(format_table1())


if __name__ == "__main__":
    main()
