"""Full eRingCNN hardware report (paper Tables V-VIII, Fig. 14).

Prints the modeled layout figures, breakdowns, efficiency gains over
eCNN, and the cross-accelerator comparisons::

    python examples/accelerator_report.py
"""

from repro.experiments import fig14, table5, table6, table7, table8
from repro.hardware.accelerator import HD30, UHD30, supported_3x3_layers


def main() -> None:
    print("=" * 72)
    print("Table V — design configuration and layout performance")
    print(table5.format_result())
    print("\nTable VI — area and power breakdowns")
    print(table6.format_result())
    print("\nFig. 14 — efficiency over eCNN")
    print(fig14.format_result())
    print("\nTable VII — comparison with Diffy")
    print(table7.format_result())
    print("\nTable VIII — comparison across sparsity approaches")
    print(table8.format_result())
    print(
        f"\nthroughput head-room at 250 MHz: "
        f"{supported_3x3_layers(HD30)} 3x3 layers/pixel at HD30, "
        f"{supported_3x3_layers(UHD30)} at UHD30"
    )


if __name__ == "__main__":
    main()
