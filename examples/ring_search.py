"""Reproduce the proper-ring search of Section III-C.

Enumerates permutation/sign structures under conditions C1-C3 and
reports the ring variants the paper discovers.  n=2 runs in seconds;
pass ``--n4`` for the full n=4 search (about a minute)::

    python examples/ring_search.py [--n4]
"""

import sys

from repro.rings.search import search_proper_rings


def describe(n: int) -> None:
    print(f"=== proper-ring search for n = {n} (conditions C1-C3)")
    result = search_proper_rings(n, restarts=10)
    print(f"non-isomorphic permutations: {len(result.permutation_classes)}")
    for p_mat in result.permutation_classes:
        locals_ = [c for c in result.candidates if (c.perm == p_mat).all()]
        best = min(c.grank for c in locals_)
        winners = [c for c in locals_ if c.grank == best]
        print(f"\npermutation P = {p_mat.tolist()}")
        print(f"  commutative+associative sign patterns: {len(locals_)}")
        print(f"  minimum grank: {best}  -> {len(winners)} ring variant(s) kept by C3")
        for cand in winners:
            print(f"    S = {cand.sign.astype(int).tolist()}")
    print()


def main() -> None:
    describe(2)  # paper: only R_H2 and C survive
    if "--n4" in sys.argv:
        describe(4)  # paper: grank-4 perm -> 2 variants; grank-5 -> 4
    else:
        print("(run with --n4 for the full n = 4 search, ~1 minute)")


if __name__ == "__main__":
    main()
