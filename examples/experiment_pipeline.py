"""Experiment orchestration: registry, artifact cache, and reports.

The same machinery `python -m repro` uses, driven as a library.
Runs in a few seconds::

    python examples/experiment_pipeline.py
"""

import tempfile

from repro.experiments import registry
from repro.experiments.artifacts import Artifact, ArtifactStore
from repro.experiments.cli import main, run_one


def library_api(results_dir: str) -> None:
    # --- 1. browse the registry ----------------------------------------------
    print(f"{len(registry.names())} registered experiments:")
    for experiment in registry.all_experiments()[:4]:
        print(f"  {experiment.name:<8} {experiment.description}")
    print("  ...")

    # --- 2. run one experiment and cache its artifact ------------------------
    store = ArtifactStore(results_dir)
    artifact = Artifact.from_dict(run_one("table1", "small"))
    path = store.save(artifact)
    print(f"\ntable1 artifact ({artifact.fingerprint}) -> {path.name}")

    # --- 3. a cache hit hands back the stored result -------------------------
    cached = store.load("table1", "small", artifact.fingerprint)
    assert cached == artifact
    print("cache hit: rendered without recomputing\n")
    print("\n".join(cached.formatted.splitlines()[:4]), "\n...")


def cli_api(results_dir: str) -> None:
    # --- 4. the same flow through the CLI entry point ------------------------
    print("\n$ python -m repro run table1 table5 --scale small --jobs 2")
    main(["run", "table1", "table5", "--scale", "small", "--jobs", "2",
          "--results-dir", results_dir])
    print("\n$ python -m repro report table5")
    main(["report", "table5", "--scale", "small", "--results-dir", results_dir])


def main_example() -> None:
    with tempfile.TemporaryDirectory() as results_dir:
        library_api(results_dir)
        cli_api(results_dir)


if __name__ == "__main__":
    main_example()
