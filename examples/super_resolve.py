"""Four-times super-resolution across ring algebras (paper Fig. 9 bottom).

Trains SR4ERNet under several algebras and reports PSNR against the
bicubic baseline::

    python examples/super_resolve.py
"""

from repro.experiments.runner import make_task, run_quality
from repro.experiments.settings import SMALL
from repro.imaging.degrade import bicubic_upsample
from repro.imaging.metrics import average_psnr


def main() -> None:
    data = make_task("sr4", SMALL)
    bicubic = average_psnr(
        bicubic_upsample(data.test_inputs, 4), data.test_targets, shave=2
    )
    print(f"bicubic x4 baseline: {bicubic:.2f} dB\n")
    print(f"{'algebra':<28} {'PSNR dB':>8} {'weights':>8}")
    variants = [
        ("real", "real field R"),
        ("ri4+fcw", "R_I4 + component ReLU"),
        ("rh4+fcw", "R_H4 (HadaNet-alike)"),
        ("rh4i+fcw", "R_H4-I (CirCNN-alike)"),
        ("h+fcw", "quaternions H"),
        ("ri4+fh", "proposed (R_I4, f_H)"),
    ]
    for kind, label in variants:
        res = run_quality(kind, "sr4", SMALL, data=data)
        print(f"{label:<28} {res.psnr_db:>8.2f} {res.parameters:>8}")
    print(
        "\nExpected shape (paper Fig. 9): R_I4+f_cw is the weakest ring; "
        "the directional ReLU (R_I4, f_H) recovers quality."
    )


if __name__ == "__main__":
    main()
