"""Four-times super-resolution across ring algebras (paper Fig. 9 bottom).

Trains SR4ERNet under several algebras, reports PSNR against the bicubic
baseline, then upscales a larger frame through the batched/tiled
:class:`~repro.nn.inference.Predictor`::

    python examples/super_resolve.py
"""

import numpy as np

from repro.experiments.runner import make_task, run_quality
from repro.experiments.settings import SMALL
from repro.imaging.degrade import bicubic_downsample, bicubic_upsample
from repro.imaging.metrics import average_psnr, psnr
from repro.imaging.synthetic import make_corpus
from repro.nn.inference import Predictor, plan_for_model


def main() -> None:
    data = make_task("sr4", SMALL)
    bicubic = average_psnr(
        bicubic_upsample(data.test_inputs, 4), data.test_targets, shave=2
    )
    print(f"bicubic x4 baseline: {bicubic:.2f} dB\n")
    print(f"{'algebra':<28} {'PSNR dB':>8} {'weights':>8}")
    variants = [
        ("real", "real field R"),
        ("ri4+fcw", "R_I4 + component ReLU"),
        ("rh4+fcw", "R_H4 (HadaNet-alike)"),
        ("rh4i+fcw", "R_H4-I (CirCNN-alike)"),
        ("h+fcw", "quaternions H"),
    ]
    for kind, label in variants:
        res = run_quality(kind, "sr4", SMALL, data=data)
        print(f"{label:<28} {res.psnr_db:>8.2f} {res.parameters:>8}")
    res = run_quality("ri4+fh", "sr4", SMALL, data=data)
    proposed = res.model
    print(f"{'proposed (R_I4, f_H)':<28} {res.psnr_db:>8.2f} {res.parameters:>8}")
    print(
        "\nExpected shape (paper Fig. 9): R_I4+f_cw is the weakest ring; "
        "the directional ReLU (R_I4, f_H) recovers quality."
    )

    # ------------------------------------------------------------------
    # Large-frame service path: a 32x32 low-res frame (vs 6x6 training
    # inputs) is upscaled to 128x128 tile by tile; the halo covers the
    # conv stack plus the bicubic skip, so tiling is exact.
    hires = make_corpus(1, 128, seed=99)[:, None]
    lowres = bicubic_downsample(hires, 4)
    plan = plan_for_model(proposed, tile=8)
    predictor = Predictor(proposed, batch_size=4, plan=plan)
    upscaled = predictor(lowres)
    whole = Predictor(proposed, batch_size=1, tile=32)(lowres)
    print(
        f"\ntiled x4 SR of a 32x32 frame: tile={plan.tile} halo={plan.halo} "
        f"(crop {plan.crop}x{plan.crop}) -> {upscaled.shape[-2]}x{upscaled.shape[-1]}"
    )
    print(
        f"  PSNR vs bicubic: {psnr(bicubic_upsample(lowres, 4)[0, 0], hires[0, 0]):.2f} dB "
        f"-> {psnr(upscaled[0, 0], hires[0, 0]):.2f} dB; "
        f"max |tiled - whole| = {np.abs(upscaled - whole).max():.2e}"
    )


if __name__ == "__main__":
    main()
