"""Denoising with a RingCNN DnERNet-PU (paper Fig. 9 top / Table IV).

Trains a real-valued ERNet and its (R_I4, f_H) RingCNN counterpart on
synthetic noisy images (sigma = 15/255) and compares PSNR and weight
counts::

    python examples/denoise_image.py
"""

from repro.experiments.runner import make_task, run_quality
from repro.experiments.settings import SMALL
from repro.imaging.metrics import average_psnr


def main() -> None:
    data = make_task("denoise", SMALL)
    noisy = average_psnr(data.test_inputs, data.test_targets, shave=2)
    print(f"noisy input PSNR: {noisy:.2f} dB  (sigma = 15/255)")
    print(f"{'model':<22} {'PSNR dB':>8} {'weights':>8} {'compression':>12}")
    real = run_quality("real", "denoise", SMALL, data=data)
    print(f"{'eCNN ERNet (real)':<22} {real.psnr_db:>8.2f} {real.parameters:>8} {'1x':>12}")
    for n in (2, 4):
        res = run_quality(f"ri{n}+fh", "denoise", SMALL, data=data)
        ratio = real.parameters / res.parameters
        print(
            f"{f'eRingCNN-n{n} (R_I,f_H)':<22} {res.psnr_db:>8.2f} "
            f"{res.parameters:>8} {f'{ratio:.1f}x':>12}"
        )
    print(
        "\nExpected shape (paper): n=2 matches or beats the real model; "
        "n=4 trails by ~0.1 dB with 4x fewer weights."
    )


if __name__ == "__main__":
    main()
