"""Denoising with a RingCNN DnERNet-PU (paper Fig. 9 top / Table IV).

Trains a real-valued ERNet and its (R_I, f_H) RingCNN counterparts on
synthetic noisy images (sigma = 15/255), compares PSNR and weight
counts, then serves a large image through the batched/tiled
:class:`~repro.nn.inference.Predictor`::

    python examples/denoise_image.py
"""

import numpy as np

from repro.experiments.runner import make_task, run_quality
from repro.experiments.settings import SMALL
from repro.imaging.degrade import add_gaussian_noise
from repro.imaging.metrics import average_psnr, psnr
from repro.imaging.synthetic import make_corpus
from repro.nn.inference import Predictor, plan_for_model


def main() -> None:
    data = make_task("denoise", SMALL)
    noisy = average_psnr(data.test_inputs, data.test_targets, shave=2)
    print(f"noisy input PSNR: {noisy:.2f} dB  (sigma = 15/255)")
    print(f"{'model':<22} {'PSNR dB':>8} {'weights':>8} {'compression':>12}")
    real = run_quality("real", "denoise", SMALL, data=data)
    print(f"{'eCNN ERNet (real)':<22} {real.psnr_db:>8.2f} {real.parameters:>8} {'1x':>12}")
    ring_model = None
    for n in (2, 4):
        res = run_quality(f"ri{n}+fh", "denoise", SMALL, data=data)
        ratio = real.parameters / res.parameters
        print(
            f"{f'eRingCNN-n{n} (R_I,f_H)':<22} {res.psnr_db:>8.2f} "
            f"{res.parameters:>8} {f'{ratio:.1f}x':>12}"
        )
        ring_model = res.model
    print(
        "\nExpected shape (paper): n=2 matches or beats the real model; "
        "n=4 trails by ~0.1 dB with 4x fewer weights."
    )

    # ------------------------------------------------------------------
    # Large-image service path: the Predictor tiles a 96x96 image (4x the
    # 24x24 training tiles) with a receptive-field halo, keeping memory
    # bounded while matching whole-image inference exactly.
    clean = make_corpus(1, 96, seed=77)[:, None]
    large_noisy = add_gaussian_noise(clean, 15.0 / 255.0, seed=78)
    plan = plan_for_model(ring_model, tile=32)
    predictor = Predictor(ring_model, batch_size=4, plan=plan)
    denoised = predictor(large_noisy)
    whole = Predictor(ring_model, batch_size=1, tile=96)(large_noisy)
    print(
        f"\ntiled 96x96 denoise: tile={plan.tile} halo={plan.halo} "
        f"(crop {plan.crop}x{plan.crop})"
    )
    print(
        f"  PSNR {psnr(large_noisy[0, 0], clean[0, 0]):.2f} dB -> "
        f"{psnr(denoised[0, 0], clean[0, 0]):.2f} dB; "
        f"max |tiled - whole| = {np.abs(denoised - whole).max():.2e}"
    )


if __name__ == "__main__":
    main()
