"""Legacy shim: the offline environment lacks the `wheel` package, so
PEP 660 editable installs fail; `python setup.py develop` works without it.
`pip install -e . --no-build-isolation` is routed through this file too.
"""

from setuptools import setup

setup()
