"""Benchmark: regenerate Fig. 15 (quality vs energy-per-pixel curves)."""

from repro.experiments import fig15
from repro.experiments.settings import TINY


def test_fig15(benchmark, record_result):
    points = benchmark.pedantic(
        lambda: fig15.run("denoise", TINY, block_sweep=(1, 2)), rounds=1, iterations=1
    )
    record_result("fig15_quality_energy", fig15.format_result(points), data=points)
    by = {(p.accelerator, p.blocks): p for p in points}
    benchmark.extra_info["n4_energy_b1_nj"] = by[("eRingCNN-n4", 1)].energy_per_pixel_nj
    assert (
        by[("eRingCNN-n4", 1)].energy_per_pixel_nj
        < by[("eCNN", 1)].energy_per_pixel_nj
    )
