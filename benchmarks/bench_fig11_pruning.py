"""Benchmark: regenerate Fig. 11 (RingCNN vs unstructured weight pruning)."""

from repro.experiments import fig11
from repro.experiments.settings import SMALL


def test_fig11(benchmark, record_result):
    points = benchmark.pedantic(
        lambda: fig11.run("denoise", SMALL, compressions=(2.0, 4.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    record_result("fig11_pruning", fig11.format_result(points), data=points)
    by = {(p.method, p.compression): p.psnr_db for p in points}
    benchmark.extra_info["ring_4x"] = by[("ring", 4.0)]
    benchmark.extra_info["pruning_4x"] = by[("pruning", 4.0)]
