"""Benchmark: regenerate Table IV (PSNR of models on eRingCNN)."""

from repro.experiments import table4
from repro.experiments.settings import TINY


def test_table4(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: table4.run(TINY, targets=("UHD30",)), rounds=1, iterations=1
    )
    record_result("table4_quality", table4.format_result(rows), data=rows)
    by = {(r.task, r.method): r.psnr_db for r in rows}
    benchmark.extra_info["n2_denoise_psnr"] = by[("denoise", "eRingCNN-n2")]
    # CNN methods beat the classical baseline.
    assert by[("denoise", "eRingCNN-n2")] > by[("denoise", "CBM3D (stand-in)")]
