"""Benchmark: regenerate Table I (ring-algebra properties)."""

from repro.experiments import table1


def test_table1(benchmark, record_result):
    rows = benchmark(table1.run)
    record_result("table1_rings", table1.format_result(rows), data=rows)
    by = {r.key: r for r in rows}
    benchmark.extra_info["ri4_efficiency_8bit"] = by["ri4"].efficiency_8bit
    benchmark.extra_info["rh4_efficiency_8bit"] = by["rh4"].efficiency_8bit
    assert by["ri4"].efficiency_8bit == 4.0
