"""Benchmark: batched FRCONV engine and tiled inference pipeline.

Three comparisons back the engine's design:

* ``frconv2d`` on :func:`~repro.nn.functional.conv2d_grouped` (one fused
  im2col + batched GEMM) vs. the former per-product Python loop of m
  separate ``conv2d`` calls;
* eval-mode weight caches (``RingConv2d`` expanded bank, ``FastRingConv2d``
  transformed ``g~``) vs. re-deriving the weights every forward;
* whole-image vs. tiled-with-halo prediction on an image far larger than
  any training tile (the bounded-memory serving path).
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.ernet import dn_ernet_pu
from repro.nn.fastconv import FastRingConv2d, frconv2d
from repro.nn.functional import conv2d
from repro.nn.inference import Predictor, plan_for_model
from repro.nn.layers import RingConv2d
from repro.nn.tensor import Tensor, concat, no_grad
from repro.rings.catalog import get_ring


def _frconv2d_looped(x, g, spec, stride=1, padding=0):
    """The pre-engine FRCONV reference: one conv2d per product index."""
    algo = spec.fast
    n = spec.n
    m = algo.num_products
    batch, ci, height, width = x.shape
    cot, cit = g.shape[0], g.shape[1]
    g_t = g.tuple_transform(algo.tg, axis=2)
    x_t = x.reshape(batch, cit, n, height, width).tuple_transform(algo.tx, axis=2)
    product_maps = []
    for p in range(m):
        plane = x_t.select(axis=2, index=p)
        weight = g_t.select(axis=2, index=p)
        z_p = conv2d(plane, weight, stride=stride, padding=padding)
        ho, wo = z_p.shape[2], z_p.shape[3]
        product_maps.append(z_p.reshape(batch, cot, 1, ho, wo))
    z_t = concat(product_maps, axis=2)
    z = z_t.tuple_transform(algo.tz, axis=2)
    return z.reshape(batch, cot * n, z.shape[3], z.shape[4])


def _best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_batched_engine_vs_looped(benchmark, record_result):
    spec = get_ring("h")  # m = 8: the loop the engine eliminates is longest
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 16, 32, 32)))
    g = Tensor(rng.standard_normal((4, 4, 4, 3, 3)))
    with no_grad():
        batched = benchmark(lambda: frconv2d(x, g, spec, padding=1).data)
        looped = _frconv2d_looped(x, g, spec, padding=1).data
        t_batched = _best_of(lambda: frconv2d(x, g, spec, padding=1))
        t_looped = _best_of(lambda: _frconv2d_looped(x, g, spec, padding=1))
    np.testing.assert_allclose(batched, looped, atol=1e-8)
    speedup = t_looped / t_batched
    benchmark.extra_info["speedup_vs_loop"] = round(speedup, 2)
    record_result(
        "inference_frconv",
        f"FRCONV quaternion (m=8), 2x16x32x32 input\n"
        f"  looped  {t_looped * 1e3:8.2f} ms\n"
        f"  batched {t_batched * 1e3:8.2f} ms   ({speedup:.2f}x)",
    )
    assert t_batched < t_looped, "batched engine should beat the per-product loop"


def test_eval_weight_cache(record_result):
    # Low-latency serving shape: small spatial extent, wide channels, so
    # per-forward weight preparation is a visible fraction of the cost.
    x = Tensor(np.random.default_rng(1).standard_normal((1, 64, 4, 4)))
    lines = ["eval weight cache, 1x64x4x4 input"]
    for name, layer in (
        ("RingConv2d[ri4]", RingConv2d(64, 64, 3, get_ring("ri4").ring, seed=0)),
        ("FastRingConv2d[h]", FastRingConv2d(64, 64, 3, get_ring("h"), seed=0)),
    ):
        layer.eval()
        with no_grad():
            layer(x)  # warm the cache

            def cached():
                layer(x)

            def uncached():
                layer._clear_weight_cache()
                layer(x)

            t_cached = _best_of(cached, repeats=15)
            t_uncached = _best_of(uncached, repeats=15)
        lines.append(
            f"  {name:<17} cold {t_uncached * 1e3:7.2f} ms  "
            f"warm {t_cached * 1e3:7.2f} ms  ({t_uncached / t_cached:.2f}x)"
        )
        assert t_cached < t_uncached, f"{name} cache should speed eval up"
    record_result("inference_weight_cache", "\n".join(lines))


def test_tiled_vs_whole_image(record_result):
    model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
    rng = np.random.default_rng(2)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    x = rng.standard_normal((1, 1, 128, 128))
    plan = plan_for_model(model, tile=32)
    whole_pred = Predictor(model, tile=128)
    tiled_pred = Predictor(model, batch_size=1, plan=plan)
    whole = whole_pred(x)
    tiled = tiled_pred(x)
    np.testing.assert_allclose(tiled, whole, atol=1e-10)
    t_whole = _best_of(lambda: whole_pred(x), repeats=3)
    t_tiled = _best_of(lambda: tiled_pred(x), repeats=3)
    record_result(
        "inference_tiling",
        f"128x128 denoise, tile={plan.tile} halo={plan.halo} (crop {plan.crop})\n"
        f"  whole image {t_whole * 1e3:8.2f} ms (peak activation ~128^2)\n"
        f"  tiled       {t_tiled * 1e3:8.2f} ms (peak activation ~{plan.crop}^2)\n"
        f"  max |tiled - whole| = {np.abs(tiled - whole).max():.2e}",
    )
