"""Benchmark: design-choice ablations (Sections IV-C and V)."""

from repro.experiments import ablations
from repro.experiments.settings import SMALL


def test_ablation_drelu_pipeline(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: ablations.drelu_pipeline_ablation("denoise", SMALL),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_drelu_pipeline", ablations.format_drelu(result), data=result)
    benchmark.extra_info["naive_penalty_db"] = result.naive_penalty_db
    # The on-the-fly pipeline never does worse than the MAC-based one.
    assert result.psnr_onthefly_db >= result.psnr_naive_db - 0.02


def test_ablation_qformat(benchmark, record_result):
    result = benchmark(ablations.qformat_ablation)
    record_result("ablation_qformat", ablations.format_qformat(result), data=result)
    benchmark.extra_info["improvement"] = result.improvement
    # Component-wise Q-formats cut the quantization error substantially.
    assert result.improvement > 1.5
