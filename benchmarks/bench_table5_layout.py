"""Benchmark: regenerate Table V (design configuration & layout)."""

from repro.experiments import table5


def test_table5(benchmark, record_result):
    rows = benchmark(table5.run)
    record_result("table5_layout", table5.format_result(rows), data=rows)
    by = {r.name: r for r in rows}
    benchmark.extra_info["n2_area_mm2"] = by["eRingCNN-n2"].area_mm2
    benchmark.extra_info["n2_power_w"] = by["eRingCNN-n2"].power_w
    benchmark.extra_info["n4_power_w"] = by["eRingCNN-n4"].power_w
    assert abs(by["eRingCNN-n2"].equivalent_tops - 41.0) < 0.5
