"""Benchmark: regenerate Fig. 1 (efficiency vs quality for SRResNet)."""

from repro.experiments import fig01
from repro.experiments.settings import SMALL


def test_fig01(benchmark, record_result):
    points = benchmark.pedantic(
        lambda: fig01.run(scale=SMALL, blocks=2, width=8, compressions=(2.0, 4.0)),
        rounds=1,
        iterations=1,
    )
    record_result("fig01_tradeoff", fig01.format_result(points), data=points)
    by = {p.method: p for p in points}
    benchmark.extra_info["ring_n2_psnr"] = by["RingCNN n=2"].psnr_db
    benchmark.extra_info["baseline_psnr"] = by["SRResNet (1x)"].psnr_db
    # Shape check: ring models reach the expected efficiency band.
    assert by["RingCNN n=4"].computation_efficiency > 3.0
