"""Benchmark: regenerate Table VIII (sparsity-approach comparison)."""

from repro.experiments import table8


def test_table8(benchmark, record_result):
    rows = benchmark(table8.run)
    record_result("table8_sparsity", table8.format_result(rows), data=rows)
    by = {r.name: r for r in rows}
    benchmark.extra_info["n2_tops_per_watt"] = by["eRingCNN-n2"].equivalent_tops_per_watt
    assert (
        by["eRingCNN-n2"].equivalent_tops_per_watt
        > by["SparTen"].equivalent_tops_per_watt
    )
