"""Benchmark: regenerate Table VII (comparison with Diffy)."""

from repro.experiments import table7


def test_table7(benchmark, record_result):
    rows = benchmark(table7.run)
    record_result("table7_diffy", table7.format_result(rows), data=rows)
    by = {r.name: r for r in rows}
    benchmark.extra_info["n2_gain"] = by["eRingCNN-n2"].gain_vs_reference
    benchmark.extra_info["n4_gain"] = by["eRingCNN-n4"].gain_vs_reference
    assert by["eRingCNN-n4"].gain_vs_reference > by["eRingCNN-n2"].gain_vs_reference
