"""Benchmark: data-parallel training throughput and bit-identity.

Drives :class:`repro.train.ParallelTrainEngine` (spawn workers,
shared-memory gradient transport, deterministic tree all-reduce) on the
serve-bench denoiser:

* optimizer steps/s at ``jobs=1`` (the in-process grain path) vs
  ``jobs=N`` (N = 4 when the host has >= 4 usable CPUs, else 2);
* a **bit-identity** assertion between the two runs — the grain
  decomposition means the worker count must never change trained bytes,
  which is what makes the speedup number trustworthy (same numerics,
  different schedule);
* the >= 1.2x scaling bar for 4 workers over serial is asserted only on
  hosts with >= 4 usable CPUs (same gating precedent as
  ``bench_sharded.py``: a 1-CPU runner cannot express process
  parallelism, so its numbers are recorded but not judged).  The bar is
  modest on purpose: every step broadcasts the full weight vector and
  the model is small, so transport overhead is a real fraction of the
  step at this scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.backend import usable_cpu_count
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.trainer import TrainConfig
from repro.serving.bench import make_bench_model
from repro.train import ParallelTrainEngine

PARALLEL_JOBS = 4
PARALLEL_SPEEDUP_BAR = 1.2
TRAIN_COUNT = 32
BATCH_SIZE = 4
EPOCHS = 3


def _loader() -> DataLoader:
    rng = np.random.default_rng(7)
    x = rng.standard_normal((TRAIN_COUNT, 1, 12, 12))
    return DataLoader(ArrayDataset(x, x * 0.5), batch_size=BATCH_SIZE, seed=11)


def _train_run(jobs: int) -> dict:
    """One timed training run; returns a result row + the trained bytes."""
    model = make_bench_model(0)
    config = TrainConfig(epochs=EPOCHS, lr=5e-3, batch_size=BATCH_SIZE, seed=11)
    engine = ParallelTrainEngine(
        model, config, jobs=jobs, model_factory=make_bench_model
    )
    try:
        started = time.perf_counter()
        result = engine.fit(_loader())
        elapsed = time.perf_counter() - started
    finally:
        engine.close()
    steps = len(result.grad_norms)
    return {
        "jobs": jobs,
        "steps": steps,
        "duration_s": elapsed,
        "steps_per_s": steps / elapsed,
        "final_loss": result.final_loss,
        "state": {k: v.tobytes() for k, v in model.state_dict().items()},
    }


def test_train_parallel(record_result):
    cpus = usable_cpu_count()
    jobs = PARALLEL_JOBS if cpus >= PARALLEL_JOBS else 2
    serial = _train_run(1)
    parallel = _train_run(jobs)

    identical = serial["state"] == parallel["state"]
    speedup = parallel["steps_per_s"] / serial["steps_per_s"]
    rows = [
        {k: v for k, v in row.items() if k != "state"}
        for row in (serial, parallel)
    ]
    lines = [
        "data-parallel training (grain-sharded, deterministic all-reduce)",
        *(
            f"  jobs={row['jobs']}: {row['steps_per_s']:6.1f} steps/s "
            f"({row['steps']} steps in {row['duration_s']:.2f}s, "
            f"final loss {row['final_loss']:.5f})"
            for row in rows
        ),
        f"  speedup jobs={jobs} over jobs=1: {speedup:.2f}x",
        f"  trained bytes identical: {identical}",
        f"  usable CPUs: {cpus}",
    ]
    if cpus >= PARALLEL_JOBS:
        lines.append(
            f"  asserted: {PARALLEL_JOBS} workers >= {PARALLEL_SPEEDUP_BAR}x "
            f"(got {speedup:.2f}x)"
        )
    else:
        lines.append(
            f"  {cpus} usable CPU(s): {PARALLEL_JOBS}-worker >= "
            f"{PARALLEL_SPEEDUP_BAR}x scaling assertion skipped "
            "(process parallelism not expressible on this host)"
        )
    # Record before judging, so a failed bar still leaves the numbers.
    record_result(
        "train_parallel",
        "\n".join(lines),
        {"rows": rows, "speedup": speedup, "bit_identical": identical},
    )

    assert identical, (
        f"jobs={jobs} trained bytes must equal the jobs=1 reference"
    )
    if cpus >= PARALLEL_JOBS:
        assert speedup >= PARALLEL_SPEEDUP_BAR, (
            f"{PARALLEL_JOBS} training workers should give >= "
            f"{PARALLEL_SPEEDUP_BAR}x over serial on {cpus} CPUs "
            f"(got {speedup:.2f}x)"
        )
