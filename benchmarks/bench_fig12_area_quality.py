"""Benchmark: regenerate Fig. 12 (area efficiency vs 8-bit PSNR)."""

from repro.experiments import fig12
from repro.experiments.runner import make_task
from repro.experiments.settings import TINY


def test_fig12(benchmark, record_result):
    data = make_task("sr4", TINY)
    kinds = ["real", "ri4+fh", "rh4+fcw", "rh4i+fcw"]
    points = benchmark.pedantic(
        lambda: fig12.run("sr4", TINY, kinds=kinds, data=data), rounds=1, iterations=1
    )
    record_result("fig12_area_quality", fig12.format_result(points), data=points)
    by = {p.kind: p for p in points}
    # Paper: (R_I, f_H) provides the best area efficiency of the rings.
    assert by["ri4+fh"].area_efficiency > by["rh4+fcw"].area_efficiency
    benchmark.extra_info["ri4_area_eff"] = by["ri4+fh"].area_efficiency
