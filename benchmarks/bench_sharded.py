"""Benchmark: process-sharded serving throughput and overload behavior.

Drives the :class:`repro.serving.ShardedInferenceServer` (spawn worker
processes, shared-memory tensor transport) through the sharded bench
harness on the serve-bench denoiser (FRCONV-kernel model, max_batch=8):

* closed-loop mixed-shape workload at 1 vs 4 worker processes, with a
  **bit-identity** assertion against the serial Predictor — sharding,
  shape-affine routing and shm transport never change bits;
* the >= 1.8x throughput bar for 4 procs over 1 is asserted only when
  the host has >= 4 usable CPUs (same gating precedent as
  ``bench_backends.py``: a single-CPU runner cannot express process
  parallelism, so the number is recorded but not judged);
* an open-loop Poisson overload replay against a deliberately small
  cluster, asserting the admission controller actually sheds load
  (rejected + degraded > 0) and that the p99 of completed requests
  stays bounded instead of growing with the queue.
"""

from __future__ import annotations

from repro.nn.backend import usable_cpu_count
from repro.serving.bench import ShardedBenchConfig, run_sharded_bench

SHARDED_SPEEDUP_BAR = 1.8
SHARDED_PROCS = 4
# Generous on purpose: p99 is judged against "bounded", not "fast" —
# under overload the admission controller must cap queueing delay at
# roughly queue_depth service times, not let it grow with offered load.
OVERLOAD_P99_CEILING_MS = 30_000.0


def test_sharded_serving(record_result):
    cpus = usable_cpu_count()
    procs = (1, SHARDED_PROCS) if cpus >= SHARDED_PROCS else (1, 2)
    config = ShardedBenchConfig(
        clients=8,
        requests_per_client=6,
        image_size=24,
        procs=procs,
        queue_depth=32,
        max_batch=8,
        overload_rate_rps=40.0,
        overload_requests=48,
        overload_policy="degrade",
        overload_queue_depth=4,
        slo_ms=250.0,
        seed=0,
    )
    report = run_sharded_bench(config)
    lines = [report.format(), f"  usable CPUs: {cpus}"]
    if cpus >= SHARDED_PROCS:
        lines.append(
            f"  asserted: {SHARDED_PROCS} procs >= {SHARDED_SPEEDUP_BAR}x "
            f"(got {report.speedup(SHARDED_PROCS):.2f}x)"
        )
    else:
        lines.append(
            f"  {cpus} usable CPU(s): {SHARDED_PROCS}-proc >= "
            f"{SHARDED_SPEEDUP_BAR}x speedup assertion skipped "
            "(process parallelism not expressible on this host)"
        )
    # Record before judging, so a failed bar still leaves the numbers.
    record_result(
        "sharded",
        "\n".join(lines),
        {"rows": report.rows, "overload": report.overload},
    )

    assert report.bit_identical, (
        "sharded outputs must be bit-identical to serial Predictor results"
    )
    over = report.overload
    assert over["rejected"] + over["degraded"] > 0, (
        "open-loop overload must trigger the admission controller "
        f"(rejected={over['rejected']}, degraded={over['degraded']})"
    )
    assert over["completed"] > 0, "overload replay completed no requests"
    assert over["latency_ms_p99"] <= OVERLOAD_P99_CEILING_MS, (
        f"overload p99 unbounded: {over['latency_ms_p99']:.0f} ms "
        f"(ceiling {OVERLOAD_P99_CEILING_MS:.0f} ms)"
    )

    if cpus >= SHARDED_PROCS:
        speedup = report.speedup(SHARDED_PROCS)
        assert speedup >= SHARDED_SPEEDUP_BAR, (
            f"{SHARDED_PROCS} worker processes should give >= "
            f"{SHARDED_SPEEDUP_BAR}x over 1 on {cpus} CPUs (got {speedup:.2f}x)"
        )
