"""Benchmark: regenerate Table VI (area and power breakdowns)."""

from repro.experiments import table6


def test_table6(benchmark, record_result):
    rows = benchmark(table6.run)
    record_result("table6_breakdown", table6.format_result(rows), data=rows)
    by = {r.name: r for r in rows}
    benchmark.extra_info["n2_conv_area_frac"] = by["eRingCNN-n2"].conv_area_fraction
    benchmark.extra_info["n4_conv_power_frac"] = by["eRingCNN-n4"].conv_power_fraction
