"""Shared benchmark helpers.

Each benchmark regenerates one table/figure of the paper and, besides
the timing pytest-benchmark records, writes the formatted rows to
``benchmarks/results/<name>.txt`` so the reproduction output survives
pytest's output capture.  A machine-readable ``<name>.json`` twin is
written alongside (structured rows via the experiment artifact encoder,
plus the host metadata perf numbers can't be compared without) so CI
can archive perf numbers as workflow artifacts and the perf-regression
gate (``benchmarks/perf_gate.py``) can judge them.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys

import pytest

from repro.experiments.artifacts import to_jsonable
from repro.nn.backend import BACKEND_ENV_VAR, usable_cpu_count

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def host_metadata() -> dict:
    """The environment facts a perf number depends on.

    Recorded in every benchmark JSON twin so regressions can be told
    apart from hardware differences: a 4-core baseline number means
    nothing on a 1-core runner, and the perf gate uses ``usable_cpus``
    to skip ratio assertions the host cannot express.
    """
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "backend_env": os.environ.get(BACKEND_ENV_VAR),
    }


@pytest.fixture()
def record_result():
    """Write a formatted experiment table to benchmarks/results/.

    ``data``, when given, is the benchmark's structured result (the
    experiment rows/points); it lands in ``<name>.json`` next to the
    text rendering — together with :func:`host_metadata` — so
    downstream tooling never has to parse tables.
    """

    def _record(name: str, text: str, data: object = None) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        payload = {
            "name": name,
            "text": text,
            "data": to_jsonable(data),
            "host": host_metadata(),
        }
        json_path = RESULTS_DIR / f"{name}.json"
        json_path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return path

    return _record
