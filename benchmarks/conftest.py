"""Shared benchmark helpers.

Each benchmark regenerates one table/figure of the paper and, besides
the timing pytest-benchmark records, writes the formatted rows to
``benchmarks/results/<name>.txt`` so the reproduction output survives
pytest's output capture.  A machine-readable ``<name>.json`` twin is
written alongside (structured rows via the experiment artifact encoder)
so CI can archive perf numbers as workflow artifacts.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.artifacts import to_jsonable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_result():
    """Write a formatted experiment table to benchmarks/results/.

    ``data``, when given, is the benchmark's structured result (the
    experiment rows/points); it lands in ``<name>.json`` next to the
    text rendering so downstream tooling never has to parse tables.
    """

    def _record(name: str, text: str, data: object = None) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        payload = {"name": name, "text": text, "data": to_jsonable(data)}
        json_path = RESULTS_DIR / f"{name}.json"
        json_path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return path

    return _record
