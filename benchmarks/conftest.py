"""Shared benchmark helpers.

Each benchmark regenerates one table/figure of the paper and, besides
the timing pytest-benchmark records, writes the formatted rows to
``benchmarks/results/<name>.txt`` so the reproduction output survives
pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_result():
    """Write a formatted experiment table to benchmarks/results/."""

    def _record(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record
