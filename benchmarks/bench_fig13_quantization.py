"""Benchmark: regenerate Fig. 13 (8-bit quantization degradation)."""

from repro.experiments import fig13
from repro.experiments.settings import SMALL


def test_fig13(benchmark, record_result):
    targets = [
        fig13.Fig13Target("Dn-UHD30", "denoise", 1),
        fig13.Fig13Target("SR-UHD30", "sr4", 1),
    ]
    rows = benchmark.pedantic(
        lambda: fig13.run(SMALL, kinds=("real", "ri2+fh", "ri4+fh"), targets=targets),
        rounds=1,
        iterations=1,
    )
    record_result("fig13_quantization", fig13.format_result(rows), data=rows)
    benchmark.extra_info["mean_drop_db"] = sum(r.degradation_db for r in rows) / len(rows)
