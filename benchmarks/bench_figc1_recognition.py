"""Benchmark: regenerate Fig. C-1 (recognition vs structured pruning)."""

from repro.experiments import figc1


def test_figc1(benchmark, record_result):
    points = benchmark.pedantic(
        lambda: figc1.run(epochs=8, train_count=120, test_count=40),
        rounds=1,
        iterations=1,
    )
    record_result("figc1_recognition", figc1.format_result(points), data=points)
    by = {p.method: p.accuracy for p in points}
    benchmark.extra_info["ring_n4_accuracy"] = by["RingCNN n=4"]
    assert by["RingCNN n=4"] >= by["LeGR (2x)"]
