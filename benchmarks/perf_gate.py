"""Perf-regression gate: judge benchmark JSON twins against baselines.

``python benchmarks/perf_gate.py`` compares the metrics named in
``benchmarks/baselines/perf_baseline.json`` against the freshly written
``benchmarks/results/*.json`` twins and fails (exit 1) when a
higher-is-better metric regresses past the tolerance band — by default
a >20% drop below the committed baseline.

Baseline entries::

    {
      "name":  "sharded-1proc-throughput",   # shown in the verdict
      "file":  "sharded.json",               # twin under results/
      "value_path": ["data", "rows", 0, "throughput_rps"],
      "denominator_path": [...],             # optional: gate a ratio
      "baseline": 18.4,                      # committed reference value
      "min_cpus": 1                          # skip on smaller hosts
    }

``value_path`` walks dict keys and list indices into the twin's
payload; with ``denominator_path`` the gated value is the quotient of
the two lookups (for speedup ratios).  ``min_cpus`` is judged against
the *recorded* host metadata in the twin, so a result file produced on
a 1-CPU runner is never held to a 4-core ratio bar even if the gate
itself runs elsewhere.  Baselines are intentionally conservative (slow
reference host): the gate exists to catch code-made regressions, not to
benchmark the hardware.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["check_metric", "run_gate", "main"]

DEFAULT_TOLERANCE = 0.20
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "perf_baseline.json"


def _walk(payload, path):
    value = payload
    for step in path:
        value = value[step]
    return float(value)


def check_metric(metric: dict, payload: dict, tolerance: float) -> tuple[str, str]:
    """Judge one baseline entry against one twin payload.

    Returns ``(status, detail)`` where status is ``"ok"``, ``"skip"``
    or ``"fail"``.
    """
    min_cpus = int(metric.get("min_cpus", 1))
    host_cpus = int(payload.get("host", {}).get("usable_cpus") or 1)
    if host_cpus < min_cpus:
        return "skip", f"host has {host_cpus} usable CPU(s), metric needs {min_cpus}"
    value = _walk(payload, metric["value_path"])
    if "denominator_path" in metric:
        value /= _walk(payload, metric["denominator_path"])
    baseline = float(metric["baseline"])
    floor = baseline * (1.0 - tolerance)
    detail = f"value {value:.3f} vs baseline {baseline:.3f} (floor {floor:.3f})"
    if value < floor:
        return "fail", detail
    return "ok", detail


def run_gate(
    baseline_path: pathlib.Path, results_dir: pathlib.Path
) -> int:
    """Judge every baseline metric; returns the count of failures."""
    spec = json.loads(baseline_path.read_text())
    tolerance = float(spec.get("tolerance", DEFAULT_TOLERANCE))
    failures = 0
    for metric in spec["metrics"]:
        name = metric["name"]
        twin = results_dir / metric["file"]
        if not twin.exists():
            print(f"FAIL {name}: missing result file {twin}")
            failures += 1
            continue
        payload = json.loads(twin.read_text())
        try:
            status, detail = check_metric(metric, payload, tolerance)
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            print(f"FAIL {name}: cannot evaluate ({type(exc).__name__}: {exc})")
            failures += 1
            continue
        print(f"{status.upper():<4} {name}: {detail}")
        if status == "fail":
            failures += 1
    return failures


def main(argv=None) -> int:
    """CLI entry point; exit 0 iff no gated metric regressed."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), help="baseline spec JSON"
    )
    parser.add_argument(
        "--results-dir", default=str(RESULTS_DIR), help="benchmark twin directory"
    )
    args = parser.parse_args(argv)
    failures = run_gate(pathlib.Path(args.baseline), pathlib.Path(args.results_dir))
    if failures:
        print(f"perf gate: {failures} metric(s) regressed past tolerance")
        return 1
    print("perf gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
