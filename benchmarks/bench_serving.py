"""Benchmark: concurrent serving throughput, per-request vs micro-batched.

Drives the :mod:`repro.serving` InferenceServer with the deterministic
closed-loop load generator: 8 concurrent clients, small denoiser, same
seeded workload for every mode and backend.  Asserts the serving layer's
two contract points before recording numbers:

* every served output is **bit-identical** to running the Predictor
  serially on that request alone (micro-batching never changes bits);
* dynamic micro-batching yields >= 1.5x the throughput of per-request
  dispatch (``max_batch=1``) at 8 concurrent clients on the numpy
  backend.
"""

from __future__ import annotations

from repro.nn.backend import usable_cpu_count
from repro.serving.bench import ServeBenchConfig, run_serve_bench


def test_serving_microbatch_speedup(record_result):
    # workers=1 so the asserted ratio isolates micro-batching itself:
    # with equal worker counts per mode, the comparison is dispatch
    # granularity (1 vs max_batch images per forward), not thread
    # scaling, and the bar holds on any core count.
    config = ServeBenchConfig(
        clients=8,
        requests_per_client=16,
        image_size=24,
        workers=1,
        max_batch=8,
        max_wait_ms=10.0,
        backends=("numpy", f"threaded:{max(2, usable_cpu_count())}", "blocked:8"),
        seed=0,
    )
    report = run_serve_bench(config)
    lines = [report.format(), f"  usable CPUs: {usable_cpu_count()}"]
    record_result("serving", "\n".join(lines), report.rows)

    assert report.bit_identical, (
        "served outputs must be bit-identical to serial Predictor results"
    )
    speedup = report.speedup("numpy")
    assert speedup >= 1.5, (
        f"micro-batching should give >= 1.5x over per-request dispatch at "
        f"{config.clients} concurrent clients (got {speedup:.2f}x)"
    )
