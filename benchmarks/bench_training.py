"""Benchmark: training-engine throughput and checkpoint overhead.

Three measurements back the repro.train subsystem's design:

* engine steps/s on the shared denoising recipe (the number every
  ``--scale paper`` runtime estimate is built from), recorded next to
  the legacy-loop figure to show the callback machinery costs nothing
  measurable;
* checkpoint save + load round-trip latency (what a ``--save-every 1``
  cadence adds per epoch);
* warm-start speedup: loading cached trained weights versus retraining
  them (why ``python -m repro run --warm-start`` exists).

All engine outputs are asserted bit-identical to the legacy loop before
any timing is recorded, so the table compares plumbing, never numerics.
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.loss import mse_loss
from repro.nn.optim import Adam, CosineLR, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainConfig
from repro.models.ernet import dn_ernet_pu
from repro.train import TrainEngine


def _workload(epochs=4, train_count=16, size=16, batch_size=8):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((train_count, 1, size, size))
    y = x * 0.7
    config = TrainConfig(epochs=epochs, lr=2e-3, batch_size=batch_size)

    def fresh():
        model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
        loader = DataLoader(ArrayDataset(x, y), batch_size=batch_size, seed=0)
        return model, loader

    return config, fresh


def _legacy_train(model, loader, config):
    params = model.parameters()
    optimizer = Adam(params, lr=config.lr)
    schedule = CosineLR(optimizer, total=config.epochs, min_lr=config.lr * config.min_lr_ratio)
    model.train()
    for _ in range(config.epochs):
        for inputs, targets in loader:
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(inputs)), targets)
            loss.backward()
            clip_grad_norm(params, config.grad_clip)
            optimizer.step()
        schedule.step()
    model.eval()


def test_engine_steps_per_second(record_result):
    """Engine vs legacy-loop training throughput (same numerics, same speed)."""
    config, fresh = _workload()
    steps = config.epochs * 2  # 16 samples / batch 8 = 2 steps per epoch

    model_legacy, loader_legacy = fresh()
    start = time.perf_counter()
    _legacy_train(model_legacy, loader_legacy, config)
    legacy_s = time.perf_counter() - start

    model_engine, loader_engine = fresh()
    start = time.perf_counter()
    TrainEngine(model_engine, config).fit(loader_engine)
    engine_s = time.perf_counter() - start

    for (name, p), (_, q) in zip(
        model_legacy.named_parameters(), model_engine.named_parameters(), strict=True
    ):
        assert np.array_equal(p.data, q.data), f"{name} diverged"

    rows = [
        {"loop": "legacy", "seconds": legacy_s, "steps_per_s": steps / legacy_s},
        {"loop": "engine", "seconds": engine_s, "steps_per_s": steps / engine_s},
    ]
    lines = [f"DnERNet-PU B1R1, {config.epochs} epochs x {steps // config.epochs} steps"]
    for row in rows:
        lines.append(
            f"  {row['loop']:<8} {row['seconds'] * 1e3:8.1f} ms   "
            f"{row['steps_per_s']:8.1f} steps/s"
        )
    record_result("training_engine", "\n".join(lines), rows)
    # The callback scaffolding must be noise next to the conv kernels.
    assert engine_s < legacy_s * 1.5


def test_checkpoint_roundtrip_latency(tmp_path, record_result):
    """Save + load cost of a full engine checkpoint (per-epoch cadence)."""
    config, fresh = _workload(epochs=2)
    model, loader = fresh()
    engine = TrainEngine(model, config)
    engine.fit(loader)
    path = tmp_path / "bench.npz"

    start = time.perf_counter()
    repeats = 20
    for _ in range(repeats):
        engine.save_checkpoint(path)
    save_ms = (time.perf_counter() - start) / repeats * 1e3

    model2, loader2 = fresh()
    engine2 = TrainEngine(model2, config)
    start = time.perf_counter()
    for _ in range(repeats):
        engine2.load_checkpoint(path, loader=loader2)
    load_ms = (time.perf_counter() - start) / repeats * 1e3

    size_kb = path.stat().st_size / 1024
    rows = [{"save_ms": save_ms, "load_ms": load_ms, "size_kb": size_kb}]
    record_result(
        "training_checkpoint",
        f"checkpoint round-trip ({size_kb:.1f} KiB file)\n"
        f"  save {save_ms:6.2f} ms   load {load_ms:6.2f} ms",
        rows,
    )


def test_warm_start_speedup(tmp_path, monkeypatch, record_result):
    """Cached-weight warm start vs retraining the same experiment model."""
    import dataclasses

    from repro.experiments import weights
    from repro.experiments.runner import make_task, run_quality
    from repro.experiments.settings import TINY

    scale = dataclasses.replace(TINY, train_count=8, test_count=2, epochs=4)
    monkeypatch.setenv(weights.WEIGHTS_DIR_ENV, str(tmp_path / "weights"))
    monkeypatch.setenv(weights.WARM_START_ENV, "1")
    data = make_task("denoise", scale)

    start = time.perf_counter()
    cold = run_quality("real", "denoise", scale, data=data)  # trains + stores
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_quality("real", "denoise", scale, data=data)  # cache hit
    warm_s = time.perf_counter() - start

    assert warm.psnr_db == cold.psnr_db
    rows = [
        {"path": "cold (train)", "seconds": cold_s},
        {"path": "warm (cache)", "seconds": warm_s, "speedup": cold_s / warm_s},
    ]
    record_result(
        "training_warm_start",
        f"quality run, DnERNet-PU B1R1 x {scale.epochs} epochs\n"
        f"  cold {cold_s * 1e3:8.1f} ms\n"
        f"  warm {warm_s * 1e3:8.1f} ms   ({cold_s / warm_s:.1f}x)",
        rows,
    )
    assert warm_s < cold_s
