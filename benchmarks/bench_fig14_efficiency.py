"""Benchmark: regenerate Fig. 14 (efficiency gains over eCNN)."""

from repro.experiments import fig14


def test_fig14(benchmark, record_result):
    gains = benchmark(fig14.run)
    record_result("fig14_efficiency", fig14.format_result(gains), data=gains)
    by = {g.name: g for g in gains}
    benchmark.extra_info["n2_engine_area_gain"] = by["eRingCNN-n2"].engine_area_gain
    benchmark.extra_info["n4_engine_energy_gain"] = by["eRingCNN-n4"].engine_energy_gain
    # Near-maximum efficiency (~n) for the ring engines.
    assert by["eRingCNN-n2"].engine_energy_gain > 1.8
    assert by["eRingCNN-n4"].engine_energy_gain > 3.4
