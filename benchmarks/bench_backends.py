"""Benchmark: per-backend throughput of the nn hot path.

Runs the same eval-mode workloads — a FastRingConv2d stack (the FRCONV
engine) and a full ERNet denoiser through the batched
:class:`~repro.nn.inference.Predictor` — on every registered backend and
records images/s.  Outputs are asserted **bit-identical** across
backends first, so the throughput table compares substrates, never
accuracy.

The threaded backend can only beat the reference path when more than
one CPU is usable; on a single-core runner the speedup assertion is
skipped and the recorded table says so.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.ernet import dn_ernet_pu
from repro.nn.backend import (
    BlockedBackend,
    NumpyBackend,
    ThreadedBackend,
    usable_cpu_count,
    use_backend,
)
from repro.nn.fastconv import FastRingConv2d
from repro.nn.inference import Predictor
from repro.nn.tensor import Tensor, no_grad
from repro.rings.catalog import get_ring


def _best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _backends():
    return [
        ("numpy", NumpyBackend()),
        (f"threaded:{max(2, usable_cpu_count())}", ThreadedBackend(jobs=max(2, usable_cpu_count()))),
        ("blocked:1", BlockedBackend(block=1)),
    ]


def test_backend_throughput_frconv(record_result):
    """FRCONV layer forward at batch 16 — the grouped-GEMM hot path."""
    spec = get_ring("h")  # m = 8 products: the widest grouped conv
    layer = FastRingConv2d(16, 16, 3, spec, seed=0)
    layer.eval()
    batch = 16
    x = Tensor(np.random.default_rng(0).standard_normal((batch, 16, 32, 32)))

    lines = [f"FRCONV[h] 16ch 3x3, batch={batch}, 32x32 ({usable_cpu_count()} usable CPU(s))"]
    rows = []
    timings = {}
    base_out = None
    for name, backend in _backends():
        with use_backend(backend), no_grad():
            out = layer(x).data
            if base_out is None:
                base_out = out
            else:
                assert np.array_equal(out, base_out), f"{name} output differs"
            elapsed = _best_of(lambda: layer(x))
        timings[name.split(":")[0]] = elapsed
        throughput = batch / elapsed
        rows.append({"backend": name, "seconds": elapsed, "images_per_s": throughput})
        lines.append(f"  {name:<12} {elapsed * 1e3:8.2f} ms   {throughput:8.1f} img/s")
    lines.append(f"  threaded speedup over numpy: {timings['numpy'] / timings['threaded']:.2f}x")
    record_result("backend_frconv", "\n".join(lines), rows)
    # Holds even on one CPU: chunking the m=8 grouped im2col shrinks the
    # per-GEMM working set well below the monolithic path's, so the win
    # is cache locality first and parallelism second.
    assert timings["threaded"] < timings["numpy"], (
        f"ThreadedBackend should beat NumpyBackend at batch {batch} "
        f"(numpy {timings['numpy'] * 1e3:.1f} ms vs threaded "
        f"{timings['threaded'] * 1e3:.1f} ms)"
    )


def test_backend_throughput_predictor(record_result):
    """Full ERNet denoiser through the batched Predictor at batch 8."""
    model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
    rng = np.random.default_rng(1)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    batch = 8
    x = rng.standard_normal((batch, 1, 48, 48))

    cpus = usable_cpu_count()
    lines = [f"dn-ERNet denoise, batch={batch}, 48x48 ({cpus} usable CPU(s))"]
    rows = []
    timings = {}
    base_out = None
    for name, backend in _backends():
        predictor = Predictor(model, batch_size=batch, tile=48, backend=backend)
        out = predictor(x)
        if base_out is None:
            base_out = out
        else:
            assert np.array_equal(out, base_out), f"{name} output differs"
        elapsed = _best_of(lambda: predictor(x))
        timings[name.split(":")[0]] = elapsed
        throughput = batch / elapsed
        rows.append({"backend": name, "seconds": elapsed, "images_per_s": throughput})
        lines.append(f"  {name:<12} {elapsed * 1e3:8.2f} ms   {throughput:8.1f} img/s")

    if cpus > 1:
        speedup = timings["numpy"] / timings["threaded"]
        lines.append(f"  threaded speedup over numpy: {speedup:.2f}x")
        assert timings["threaded"] < timings["numpy"], (
            f"ThreadedBackend should beat NumpyBackend on {cpus} CPUs "
            f"(numpy {timings['numpy'] * 1e3:.1f} ms vs threaded "
            f"{timings['threaded'] * 1e3:.1f} ms)"
        )
    else:
        lines.append("  single usable CPU: threaded-vs-numpy speedup assertion skipped")
    record_result("backend_throughput", "\n".join(lines), rows)
