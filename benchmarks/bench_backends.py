"""Benchmark: per-backend throughput of the nn hot path.

Runs the same eval-mode workloads — a FastRingConv2d stack (the FRCONV
engine) and a full ERNet denoiser through the batched
:class:`~repro.nn.inference.Predictor` — on every registered backend and
records images/s.  Outputs are asserted **bit-identical** across
backends first, so the throughput table compares substrates, never
accuracy.

The threaded backend can only beat the reference path when more than
one CPU is usable; on a single-core runner the speedup assertion is
skipped and the recorded table says so.

``test_backend_tuned_vs_default`` adds the autotuner's report card: a
ring-conv denoiser served by the default Predictor configuration vs the
:mod:`repro.tune` winner for the same workload, bit-identity asserted
and the tuned-over-default throughput ratio recorded in the JSON twin
(gated by ``perf_gate.py`` as ``tuned-inference``) — so every future
kernel/backend PR shows its remaining headroom against the tuned
config.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.ernet import dn_ernet_pu
from repro.models.factory import make_factory
from repro.nn.backend import (
    BlockedBackend,
    NumpyBackend,
    ThreadedBackend,
    usable_cpu_count,
    use_backend,
)
from repro.nn.fastconv import FastRingConv2d
from repro.nn.inference import Predictor
from repro.nn.tensor import Tensor, no_grad
from repro.rings.catalog import get_ring
from repro.tune import tune_model


def _best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _backends():
    return [
        ("numpy", NumpyBackend()),
        (f"threaded:{max(2, usable_cpu_count())}", ThreadedBackend(jobs=max(2, usable_cpu_count()))),
        ("blocked:1", BlockedBackend(block=1)),
    ]


def test_backend_throughput_frconv(record_result):
    """FRCONV layer forward at batch 16 — the grouped-GEMM hot path."""
    spec = get_ring("h")  # m = 8 products: the widest grouped conv
    layer = FastRingConv2d(16, 16, 3, spec, seed=0)
    layer.eval()
    batch = 16
    x = Tensor(np.random.default_rng(0).standard_normal((batch, 16, 32, 32)))

    lines = [f"FRCONV[h] 16ch 3x3, batch={batch}, 32x32 ({usable_cpu_count()} usable CPU(s))"]
    rows = []
    timings = {}
    base_out = None
    for name, backend in _backends():
        with use_backend(backend), no_grad():
            out = layer(x).data
            if base_out is None:
                base_out = out
            else:
                assert np.array_equal(out, base_out), f"{name} output differs"
            elapsed = _best_of(lambda: layer(x))
        timings[name.split(":")[0]] = elapsed
        throughput = batch / elapsed
        rows.append({"backend": name, "seconds": elapsed, "images_per_s": throughput})
        lines.append(f"  {name:<12} {elapsed * 1e3:8.2f} ms   {throughput:8.1f} img/s")
    lines.append(f"  threaded speedup over numpy: {timings['numpy'] / timings['threaded']:.2f}x")
    record_result("backend_frconv", "\n".join(lines), rows)
    # Holds even on one CPU: chunking the m=8 grouped im2col shrinks the
    # per-GEMM working set well below the monolithic path's, so the win
    # is cache locality first and parallelism second.
    assert timings["threaded"] < timings["numpy"], (
        f"ThreadedBackend should beat NumpyBackend at batch {batch} "
        f"(numpy {timings['numpy'] * 1e3:.1f} ms vs threaded "
        f"{timings['threaded'] * 1e3:.1f} ms)"
    )


def test_backend_throughput_predictor(record_result):
    """Full ERNet denoiser through the batched Predictor at batch 8."""
    model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
    rng = np.random.default_rng(1)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    batch = 8
    x = rng.standard_normal((batch, 1, 48, 48))

    cpus = usable_cpu_count()
    lines = [f"dn-ERNet denoise, batch={batch}, 48x48 ({cpus} usable CPU(s))"]
    rows = []
    timings = {}
    base_out = None
    for name, backend in _backends():
        predictor = Predictor(model, batch_size=batch, tile=48, backend=backend)
        out = predictor(x)
        if base_out is None:
            base_out = out
        else:
            assert np.array_equal(out, base_out), f"{name} output differs"
        elapsed = _best_of(lambda: predictor(x))
        timings[name.split(":")[0]] = elapsed
        throughput = batch / elapsed
        rows.append({"backend": name, "seconds": elapsed, "images_per_s": throughput})
        lines.append(f"  {name:<12} {elapsed * 1e3:8.2f} ms   {throughput:8.1f} img/s")

    if cpus > 1:
        speedup = timings["numpy"] / timings["threaded"]
        lines.append(f"  threaded speedup over numpy: {speedup:.2f}x")
        assert timings["threaded"] < timings["numpy"], (
            f"ThreadedBackend should beat NumpyBackend on {cpus} CPUs "
            f"(numpy {timings['numpy'] * 1e3:.1f} ms vs threaded "
            f"{timings['threaded'] * 1e3:.1f} ms)"
        )
    else:
        lines.append("  single usable CPU: threaded-vs-numpy speedup assertion skipped")
    record_result("backend_throughput", "\n".join(lines), rows)


def test_backend_tuned_vs_default(record_result, tmp_path, monkeypatch):
    """Autotuned vs default schedule on a ring-conv (FRCONV) denoiser.

    Tunes into an isolated cache, then times the default configuration
    against a ``tuned=True`` Predictor on the same batch.  The winner
    passed the tuner's byte-parity guard, so bit-identity is asserted
    outright; the throughput ratio lands in the JSON twin for the
    ``tuned-inference`` perf-gate row (tuned can tie the default — the
    default is always in the measured candidate set — so the ratio's
    floor is noise, not search quality).
    """
    monkeypatch.setenv("REPRO_TUNING_DIR", str(tmp_path))
    model = dn_ernet_pu(blocks=1, ratio=1, factory=make_factory("ri4+fh"), seed=0)
    rng = np.random.default_rng(2)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    model.eval()
    batch = 8
    shape = (1, 48, 48)
    x = rng.standard_normal((batch, *shape))

    entry = tune_model(model, shape, batch, seed=0, trials=3, warmup=1, top_k=6)
    default = Predictor(model, batch_size=batch, tuned=False)
    tuned = Predictor(model, batch_size=batch, tuned=True)
    out_default = default(x)
    out_tuned = tuned(x)
    assert np.array_equal(out_default, out_tuned), "tuned output differs from default"

    timings = {
        "default": _best_of(lambda: default(x)),
        "tuned": _best_of(lambda: tuned(x)),
    }
    speedup = timings["default"] / timings["tuned"]
    cpus = usable_cpu_count()
    lines = [
        f"ri4+fh dn-ERNet (ring conv), batch={batch}, 48x48 ({cpus} usable CPU(s))",
        f"  {'default':<12} {timings['default'] * 1e3:8.2f} ms   "
        f"{batch / timings['default']:8.1f} img/s",
        f"  {'tuned':<12} {timings['tuned'] * 1e3:8.2f} ms   "
        f"{batch / timings['tuned']:8.1f} img/s",
        f"  winner {entry.winner.label()} (default {entry.default.label()}); "
        f"tuner-probe speedup {entry.speedup:.2f}x",
        f"  tuned vs default: {speedup:.2f}x; outputs bit-identical: True",
    ]
    payload = {
        "rows": [
            {
                "config": "default",
                "label": entry.default.label(),
                "seconds": timings["default"],
                "images_per_s": batch / timings["default"],
            },
            {
                "config": "tuned",
                "label": entry.winner.label(),
                "seconds": timings["tuned"],
                "images_per_s": batch / timings["tuned"],
            },
        ],
        "winner": entry.winner.to_jsonable(),
        "tuned_vs_default_speedup": speedup,
        "tuner_probe_speedup": entry.speedup,
        "fingerprint": entry.fingerprint,
    }
    record_result("backend_tuned", "\n".join(lines), payload)
    # The default config is always a measured candidate, so the winner's
    # probe median never trails it; the wall-clock re-measure here may
    # wobble, hence the gate's tolerance — but parity must hold exactly.
    assert entry.speedup >= 1.0 or entry.winner == entry.default
