"""Benchmark: trace-once compiled inference vs the eager Predictor.

Per-request (batch 1) latency of ``Predictor.predict`` against its
compiled twin (:meth:`Predictor.compile`) on the FRCONV m=8 model the
fast-algorithm benchmarks use — a stack of Hamilton-ring
:class:`FastRingConv2d` layers — plus the one-off plan build cost the
first request of a shape pays.

Contract points asserted before recording numbers:

* compiled outputs are **bit-identical** to eager at every size;
* replaying the cached plan is >= 1.5x faster than the eager Predictor
  at batch 1 on 16x16 requests — the small-request point where the
  Tensor/tape overhead the compiled path eliminates dominates.  The
  ratio shrinks as images grow (both paths converge on the same
  memory-bound im2col windows + GEMM work), which the recorded rows
  show; the per-size table is the honest picture, the 16x16 row is the
  latency headline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.fastconv import FastRingConv2d
from repro.nn.inference import Predictor
from repro.nn.layers import ReLU, Sequential
from repro.rings.catalog import get_ring

SIZES = (16, 24, 32)
ASSERT_SIZE = 16  # small-request latency point (see module docstring)


def _frconv_model():
    spec = get_ring("h")  # Hamilton ring: n=4, m=8 fast algorithm
    layers = []
    for seed in range(3):
        layers += [FastRingConv2d(16, 16, 3, spec, padding=1, seed=seed), ReLU()]
    model = Sequential(*layers)
    rng = np.random.default_rng(0)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    return model.eval()


def _best_ms(fn, x, reps=9, inner=30):
    """Best-of-reps mean latency in ms (robust against scheduler noise)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(inner):
            fn(x)
        best = min(best, (time.perf_counter() - start) / inner)
    return best * 1e3


def test_compiled_vs_eager_latency(record_result):
    model = _frconv_model()
    rows = []
    for size in SIZES:
        x = np.random.default_rng(size).standard_normal((1, 16, size, size))
        eager = Predictor(model)
        compiled = Predictor(model).compile()
        eager.predict(x)  # warm eval weight caches
        start = time.perf_counter()
        compiled.predict(x)  # first request traces + verifies the plan
        build_ms = (time.perf_counter() - start) * 1e3
        assert compiled.predict(x).tobytes() == eager.predict(x).tobytes(), (
            f"compiled replay must be bit-identical to eager at {size}x{size}"
        )
        eager_ms = _best_ms(eager.predict, x)
        compiled_ms = _best_ms(compiled.predict, x)
        rows.append(
            {
                "size": size,
                "eager_ms": eager_ms,
                "compiled_ms": compiled_ms,
                "speedup": eager_ms / compiled_ms,
                "plan_build_ms": build_ms,
                "plan_records": len(next(iter(compiled._plans.values()))[1].records),
            }
        )

    lines = [
        "compiled inference: FRCONV m=8 model (3x FastRingConv2d(16,16,3,h)+ReLU), batch 1",
        f"  {'size':>6} {'eager ms':>10} {'compiled ms':>12} {'speedup':>8} "
        f"{'plan build ms':>14} {'records':>8}",
    ]
    for row in rows:
        lines.append(
            f"  {row['size']:>4}px {row['eager_ms']:10.3f} {row['compiled_ms']:12.3f} "
            f"{row['speedup']:7.2f}x {row['plan_build_ms']:14.2f} {row['plan_records']:8d}"
        )
    record_result("compiled_inference", "\n".join(lines), rows)

    headline = next(r for r in rows if r["size"] == ASSERT_SIZE)
    assert headline["speedup"] >= 1.5, (
        f"compiled replay should be >= 1.5x faster than eager per-request "
        f"inference at batch 1, {ASSERT_SIZE}x{ASSERT_SIZE} "
        f"(got {headline['speedup']:.2f}x)"
    )
