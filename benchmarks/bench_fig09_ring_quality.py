"""Benchmark: regenerate Fig. 9 (PSNR comparison of rings).

Uses the SMALL scale with 3-seed averaging — the TINY scale is too noisy
to resolve the ~0.1 dB algebra gaps the paper reports.
"""

from repro.experiments import fig09
from repro.experiments.runner import make_task
from repro.experiments.settings import SMALL


def test_fig09_denoise_n4(benchmark, record_result):
    data = make_task("denoise", SMALL)
    result = benchmark.pedantic(
        lambda: fig09.run("denoise", 4, SMALL, seeds=(0, 1, 2), data=data),
        rounds=1,
        iterations=1,
    )
    record_result("fig09_denoise_n4", fig09.format_result(result), data=result)
    benchmark.extra_info["proposed_psnr"] = result.psnr_of("ri4+fh")
    benchmark.extra_info["fcw_psnr"] = result.psnr_of("ri4+fcw")
    # Paper: the directional ReLU recovers the capacity f_cw loses.
    assert result.psnr_of("ri4+fh") > result.psnr_of("ri4+fcw")


def test_fig09_denoise_n2(benchmark, record_result):
    data = make_task("denoise", SMALL)
    result = benchmark.pedantic(
        lambda: fig09.run("denoise", 2, SMALL, seeds=(0, 1, 2), data=data),
        rounds=1,
        iterations=1,
    )
    record_result("fig09_denoise_n2", fig09.format_result(result), data=result)
    benchmark.extra_info["proposed_psnr"] = result.psnr_of("ri2+fh")
    # Paper: n=2 RingCNN is competitive with (here: within noise of) real.
    assert result.psnr_of("ri2+fh") > result.psnr_of("real") - 0.15


def test_fig09_sr4_n2(benchmark, record_result):
    data = make_task("sr4", SMALL)
    result = benchmark.pedantic(
        lambda: fig09.run("sr4", 2, SMALL, seeds=(0, 1, 2), data=data),
        rounds=1,
        iterations=1,
    )
    record_result("fig09_sr4_n2", fig09.format_result(result), data=result)
    benchmark.extra_info["proposed_psnr"] = result.psnr_of("ri2+fh")
