"""Benchmark: regenerate Table II (isomorphic G and fast algorithms)."""

from repro.experiments import table2


def test_table2(benchmark, record_result):
    rows = benchmark(table2.run)
    record_result("table2_fast", table2.format_result(rows), data=rows)
    assert all(row.exact for row in rows)
    benchmark.extra_info["rings_verified"] = len(rows)
