"""Benchmark: regenerate Fig. 10 (ablation between (R_I, f_H) and R_H)."""

from repro.experiments import fig10
from repro.experiments.settings import TINY


def test_fig10(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig10.run("sr4", TINY), rounds=1, iterations=1
    )
    record_result("fig10_ablation", fig10.format_result(result), data=result)
    benchmark.extra_info["rh4_psnr"] = result.baseline.psnr_db
    benchmark.extra_info["modified_psnr"] = result.modified.psnr_db
